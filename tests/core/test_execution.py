"""Tests for the synchronous round executor (§2.2)."""

import pytest

from repro.core.agent import BroadcastAlgorithm, OutdegreeAlgorithm, OutputPortAlgorithm
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import bidirectional_ring, directed_ring, star_graph
from repro.graphs.digraph import DiGraph


class CountMessages(BroadcastAlgorithm):
    """State = number of messages received so far (multiset sizes only)."""

    def initial_state(self, input_value):
        return 0

    def message(self, state):
        return "ping"

    def transition(self, state, received):
        return state + len(received)

    def output(self, state):
        return state


class EchoOutdegree(OutdegreeAlgorithm):
    """Broadcasts its current outdegree; state = sorted received tuple."""

    def initial_state(self, input_value):
        return ()

    def message(self, state, outdegree):
        return outdegree

    def transition(self, state, received):
        return tuple(sorted(received))

    def output(self, state):
        return state


class PortSpray(OutputPortAlgorithm):
    """Sends its port number on each port; state = multiset received."""

    def initial_state(self, input_value):
        return ()

    def messages(self, state, outdegree):
        return list(range(outdegree))

    def transition(self, state, received):
        return tuple(sorted(received))

    def output(self, state):
        return state


class BadPortCount(OutputPortAlgorithm):
    def initial_state(self, input_value):
        return None

    def messages(self, state, outdegree):
        return [0]  # wrong length unless outdegree == 1

    def transition(self, state, received):
        return state

    def output(self, state):
        return state


class TestDelivery:
    def test_indegree_messages_per_round(self):
        g = directed_ring(4)  # indegree 2 everywhere (pred + self)
        ex = Execution(CountMessages(), g, inputs=[0] * 4)
        ex.run(3)
        assert ex.outputs() == [6, 6, 6, 6]

    def test_star_counts(self):
        g = star_graph(4)
        ex = Execution(CountMessages(), g, inputs=[0] * 4)
        ex.step()
        assert ex.outputs() == [4, 2, 2, 2]  # hub: 3 leaves + self

    def test_outdegree_passed_to_sender(self):
        g = star_graph(3)  # hub outdegree 3, leaves 2
        ex = Execution(EchoOutdegree(), g, inputs=[0] * 3)
        ex.step()
        # Leaf receives hub's message (3) and its own (2).
        assert ex.outputs()[1] == (2, 3)
        assert ex.outputs()[0] == (2, 2, 3)

    def test_ports_deliver_distinct_messages(self):
        g = directed_ring(3)
        ex = Execution(PortSpray(), g, inputs=[0] * 3)
        ex.step()
        # Each vertex gets one message per in-edge: ports are 0/1 per
        # sender (self-loop port and the ring edge port).
        for out in ex.outputs():
            assert len(out) == 2

    def test_wrong_port_count_raises(self):
        g = directed_ring(3)
        ex = Execution(BadPortCount(), g, inputs=[0] * 3)
        with pytest.raises(ValueError):
            ex.step()


class TestScrambling:
    def test_scrambling_changes_order_not_multiset(self):
        class RecordOrder(BroadcastAlgorithm):
            def initial_state(self, input_value):
                return (input_value, ())

            def message(self, state):
                return state[0]

            def transition(self, state, received):
                return (state[0], received)

            def output(self, state):
                return state[1]

        g = star_graph(4, values=None)
        a = Execution(RecordOrder(), g, inputs=[0, 1, 2, 3], scramble_seed=1).run(1)
        b = Execution(RecordOrder(), g, inputs=[0, 1, 2, 3], scramble_seed=2).run(1)
        assert sorted(a.outputs()[0]) == sorted(b.outputs()[0])

    def test_no_scrambling_is_deterministic(self):
        g = bidirectional_ring(5)
        a = Execution(CountMessages(), g, inputs=[0] * 5, scramble_seed=None).run(2)
        b = Execution(CountMessages(), g, inputs=[0] * 5, scramble_seed=None).run(2)
        assert a.outputs() == b.outputs()


class TestModelEnforcement:
    def test_symmetric_model_rejects_asymmetric_graph(self):
        class SymCount(CountMessages):
            model = CommunicationModel.SYMMETRIC

        g = directed_ring(4)
        ex = Execution(SymCount(), g, inputs=[0] * 4)
        with pytest.raises(ValueError, match="not symmetric"):
            ex.step()

    def test_port_model_rejects_dynamic_graph(self):
        dyn = PeriodicDynamicGraph([directed_ring(3), bidirectional_ring(3)])
        with pytest.raises(ValueError, match="static"):
            Execution(PortSpray(), dyn, inputs=[0] * 3)

    def test_self_loops_required(self):
        g = DiGraph(2, [(0, 1), (1, 0)])  # no self-loops
        ex = Execution(CountMessages(), g, inputs=[0, 0])
        with pytest.raises(ValueError, match="self-loop"):
            ex.step()


class TestInitialization:
    def test_inputs_or_states_required(self):
        with pytest.raises(ValueError):
            Execution(CountMessages(), directed_ring(3))

    def test_input_length_checked(self):
        with pytest.raises(ValueError):
            Execution(CountMessages(), directed_ring(3), inputs=[0])

    def test_explicit_states_override(self):
        g = directed_ring(3)
        ex = Execution(CountMessages(), g, initial_states=[10, 20, 30])
        assert ex.outputs() == [10, 20, 30]

    def test_unanimous_output(self):
        g = directed_ring(3)
        ex = Execution(CountMessages(), g, inputs=[0] * 3)
        assert ex.unanimous_output() == 0
        ex2 = Execution(CountMessages(), g, initial_states=[1, 2, 3])
        assert ex2.unanimous_output() is None

    def test_round_counter(self):
        ex = Execution(CountMessages(), directed_ring(3), inputs=[0] * 3)
        assert ex.round_number == 0
        ex.run(5)
        assert ex.round_number == 5
