"""Tests for the content-addressed memo layer (``repro.core.memo``)."""

import pytest

from repro.core.engine.plan import PlanCache
from repro.core.engine.trace import MetricsRegistry
from repro.core.memo import (
    MemoCache,
    cached_plan,
    clear_memos,
    graph_fingerprint,
    intern_graph,
    memo_disabled,
    memo_enabled,
    memo_stats,
    memoized_equitable_partition,
    memoized_minimum_base,
    publish_memo_metrics,
)
from repro.fibrations.minimum_base import equitable_partition, minimum_base
from repro.graphs.builders import directed_ring, random_strongly_connected
from repro.graphs.digraph import DiGraph


@pytest.fixture(autouse=True)
def fresh_memos():
    clear_memos()
    yield
    clear_memos()


class TestMemoCache:
    def test_hit_miss_counters(self):
        cache = MemoCache("t", maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_lru_eviction_order(self):
        cache = MemoCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear_resets_counters(self):
        cache = MemoCache("t")
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_needs_positive_capacity(self):
        with pytest.raises(ValueError):
            MemoCache("t", maxsize=0)


class TestFingerprint:
    def test_matches_provenance_fingerprint(self):
        from repro.analysis.provenance import graph_fingerprint as provenance_fp

        g = random_strongly_connected(6, seed=3)
        assert provenance_fp(g) == graph_fingerprint(g)

    def test_cached_on_the_graph(self):
        g = directed_ring(5)
        assert g._fingerprint is None
        fp = graph_fingerprint(g)
        assert g._fingerprint == fp
        assert graph_fingerprint(g) == fp

    def test_content_equal_graphs_share_fingerprints(self):
        assert graph_fingerprint(directed_ring(5)) == graph_fingerprint(directed_ring(5))
        assert graph_fingerprint(directed_ring(5)) != graph_fingerprint(directed_ring(6))


class TestInterning:
    def test_first_seen_instance_wins(self):
        g1 = directed_ring(6)
        g2 = directed_ring(6)
        assert intern_graph(g1) is g1
        assert intern_graph(g2) is g1
        assert intern_graph(g1) is g1

    def test_disabled_is_identity(self):
        g1, g2 = directed_ring(6), directed_ring(6)
        with memo_disabled():
            assert intern_graph(g1) is g1
            assert intern_graph(g2) is g2


class TestMemoizedFibrations:
    def test_minimum_base_computed_once_per_content(self):
        mb1 = memoized_minimum_base(directed_ring(6))
        mb2 = memoized_minimum_base(directed_ring(6))
        assert mb1 is mb2
        stats = memo_stats()["minimum_base"]
        assert stats == {"hits": 1, "misses": 1, "size": 1}

    def test_minimum_base_agrees_with_direct_computation(self):
        g = random_strongly_connected(7, seed=1).with_values([v % 2 for v in range(7)])
        mb = memoized_minimum_base(g)
        direct = minimum_base(g)
        assert mb.classes == direct.classes
        assert mb.base.n == direct.base.n
        assert mb.fibre_sizes == direct.fibre_sizes

    def test_equitable_partition_returns_fresh_lists(self):
        g = random_strongly_connected(6, seed=2)
        first = memoized_equitable_partition(g)
        second = memoized_equitable_partition(g)
        assert first == second == equitable_partition(g)
        assert first is not second  # callers may mutate their copy
        first[0] = 999
        assert memoized_equitable_partition(g) == second

    def test_disabled_bypasses_cache(self):
        with memo_disabled():
            memoized_minimum_base(directed_ring(4))
        assert memo_stats()["minimum_base"]["size"] == 0

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO", "0")
        assert not memo_enabled()
        memoized_minimum_base(directed_ring(4))
        assert memo_stats()["minimum_base"]["size"] == 0


class TestPlanMemo:
    def test_plans_shared_across_plan_caches(self):
        g1 = intern_graph(directed_ring(8))
        plan1 = PlanCache().plan_for(g1)
        # A content-equal twin in a brand-new cache: the memo hands the
        # compiled plan over, no recompile.
        g2 = intern_graph(DiGraph(8, directed_ring(8).edge_specs()))
        assert g2 is g1  # interning collapsed it
        cache = PlanCache()
        assert cache.plan_for(g2) is plan1
        assert cache.hits == 1 and cache.misses == 0

    def test_anonymous_graphs_skip_the_memo(self):
        g = directed_ring(8)  # never fingerprinted
        PlanCache().plan_for(g)
        assert cached_plan(g) is None
        assert memo_stats()["delivery_plan"]["size"] == 0

    def test_fingerprinted_twins_share_without_interning(self):
        g1, g2 = directed_ring(8), directed_ring(8)
        graph_fingerprint(g1), graph_fingerprint(g2)
        plan1 = PlanCache().plan_for(g1)
        assert PlanCache().plan_for(g2) is plan1


class TestMetricsPublication:
    def test_counters_land_in_registry(self):
        memoized_minimum_base(directed_ring(5))
        memoized_minimum_base(directed_ring(5))
        registry = MetricsRegistry()
        publish_memo_metrics(registry)
        assert registry.counter("memo_minimum_base_hits").value == 1
        assert registry.counter("memo_minimum_base_misses").value == 1

    def test_baseline_scopes_the_delta(self):
        memoized_minimum_base(directed_ring(5))
        baseline = memo_stats()
        memoized_minimum_base(directed_ring(5))  # one hit after the snapshot
        registry = MetricsRegistry()
        publish_memo_metrics(registry, baseline)
        assert registry.counter("memo_minimum_base_hits").value == 1
        assert registry.counter("memo_minimum_base_misses").value == 0
