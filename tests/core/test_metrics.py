"""Tests for the metric-space layer (§2.3)."""

import pytest

from repro.core.metrics import discrete_metric, euclidean_metric, spread


class TestDiscreteMetric:
    def test_equal(self):
        assert discrete_metric(1, 1) == 0.0
        assert discrete_metric("a", "a") == 0.0

    def test_different(self):
        assert discrete_metric(1, 2) == 1.0
        assert discrete_metric(1, "1") == 1.0

    def test_unorderable_values(self):
        assert discrete_metric({1: 2}, {1: 2}) == 0.0
        assert discrete_metric({1: 2}, {1: 3}) == 1.0


class TestEuclideanMetric:
    def test_scalars(self):
        assert euclidean_metric(1.0, 4.0) == 3.0

    def test_vectors(self):
        assert euclidean_metric((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_mixed_numeric_types(self):
        from fractions import Fraction

        assert euclidean_metric(Fraction(1, 2), 0.5) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_metric((1, 2), (1, 2, 3))

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            euclidean_metric("abc", "abd")


class TestSpread:
    def test_consensus_zero(self):
        assert spread([2.0, 2.0, 2.0]) == 0.0

    def test_max_pairwise(self):
        assert spread([1.0, 5.0, 3.0]) == 4.0

    def test_with_discrete_metric(self):
        assert spread(["a", "a", "b"], metric=discrete_metric) == 1.0
