"""Tests for the communication-model enumeration."""

from repro.core.models import CommunicationModel as CM


class TestModelProperties:
    def test_isotropic(self):
        assert CM.SIMPLE_BROADCAST.isotropic
        assert CM.OUTDEGREE_AWARE.isotropic
        assert CM.SYMMETRIC.isotropic
        assert CM.ONE_BIT_BROADCAST.isotropic
        assert not CM.OUTPUT_PORT_AWARE.isotropic

    def test_symmetry_requirement(self):
        assert CM.SYMMETRIC.requires_symmetric_network
        assert not CM.SIMPLE_BROADCAST.requires_symmetric_network
        assert not CM.ONE_BIT_BROADCAST.requires_symmetric_network

    def test_static_only(self):
        assert CM.OUTPUT_PORT_AWARE.static_only
        assert not CM.OUTDEGREE_AWARE.static_only
        assert not CM.ONE_BIT_BROADCAST.static_only

    def test_sees_outdegree(self):
        assert CM.OUTDEGREE_AWARE.sees_outdegree
        assert CM.OUTPUT_PORT_AWARE.sees_outdegree
        assert CM.ONE_BIT_BROADCAST.sees_outdegree
        assert not CM.SIMPLE_BROADCAST.sees_outdegree
        assert not CM.SYMMETRIC.sees_outdegree

    def test_outdegree_message_preserving(self):
        # The quotient layer's activation gate: only the one-bit model
        # opts out (its single bit does not factor through
        # outdegree-preserving fibrations the way full messages do).
        assert CM.SIMPLE_BROADCAST.outdegree_message_preserving
        assert CM.OUTDEGREE_AWARE.outdegree_message_preserving
        assert CM.SYMMETRIC.outdegree_message_preserving
        assert CM.OUTPUT_PORT_AWARE.outdegree_message_preserving
        assert not CM.ONE_BIT_BROADCAST.outdegree_message_preserving

    def test_one_bit_value(self):
        assert CM("one-bit broadcast") is CM.ONE_BIT_BROADCAST
