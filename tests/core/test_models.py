"""Tests for the communication-model enumeration."""

from repro.core.models import CommunicationModel as CM


class TestModelProperties:
    def test_isotropic(self):
        assert CM.SIMPLE_BROADCAST.isotropic
        assert CM.OUTDEGREE_AWARE.isotropic
        assert CM.SYMMETRIC.isotropic
        assert not CM.OUTPUT_PORT_AWARE.isotropic

    def test_symmetry_requirement(self):
        assert CM.SYMMETRIC.requires_symmetric_network
        assert not CM.SIMPLE_BROADCAST.requires_symmetric_network

    def test_static_only(self):
        assert CM.OUTPUT_PORT_AWARE.static_only
        assert not CM.OUTDEGREE_AWARE.static_only

    def test_sees_outdegree(self):
        assert CM.OUTDEGREE_AWARE.sees_outdegree
        assert CM.OUTPUT_PORT_AWARE.sees_outdegree
        assert not CM.SIMPLE_BROADCAST.sees_outdegree
        assert not CM.SYMMETRIC.sees_outdegree
