"""Tests for network class specifications."""

import pytest

from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge, NetworkClassSpec


class TestNetworkClassSpec:
    def test_bound_requires_value(self):
        with pytest.raises(ValueError):
            NetworkClassSpec(CM.SYMMETRIC, Knowledge.BOUND_N)

    def test_exact_requires_value(self):
        with pytest.raises(ValueError):
            NetworkClassSpec(CM.SYMMETRIC, Knowledge.EXACT_N)

    def test_ports_cannot_be_dynamic(self):
        with pytest.raises(ValueError):
            NetworkClassSpec(CM.OUTPUT_PORT_AWARE, Knowledge.NONE, dynamic=True)

    def test_valid_specs(self):
        spec = NetworkClassSpec(CM.OUTDEGREE_AWARE, Knowledge.EXACT_N, n_bound=8)
        assert "static" in spec.describe()
        dyn = NetworkClassSpec(CM.SYMMETRIC, Knowledge.LEADER, dynamic=True)
        assert "dynamic" in dyn.describe()

    def test_frozen(self):
        spec = NetworkClassSpec(CM.SYMMETRIC, Knowledge.NONE)
        with pytest.raises(AttributeError):
            spec.dynamic = True
