"""Regression: the scramble schedule is a single per-execution stream.

The old derivation seeded a fresh ``random.Random(seed*1_000_003 +
t*9973 + j)`` per agent per round — an affine map under which distinct
``(seed, t, j)`` triples can alias (e.g. ``(s, t, j)`` and
``(s, t-1, j+9973)`` collide for any ``s``), silently correlating
shuffle sites across rounds, agents, and even executions with different
seeds.  The engine instead draws every shuffle from one
``random.Random(seed)`` stream consumed in ``(t, j)`` order: distinct
sites consume disjoint stream segments by construction and cannot alias.

These tests pin the new schedule exactly (so any future change to
stream consumption is a deliberate, visible decision) and demonstrate
the aliasing the old arithmetic allowed.
"""

import random

from repro.core.agent import BroadcastAlgorithm
from repro.core.execution import Execution
from repro.graphs.builders import star_graph


class RecordOrder(BroadcastAlgorithm):
    """Output = the exact (scrambled) delivery order of the last round."""

    def initial_state(self, input_value):
        return (input_value, ())

    def message(self, state):
        return state[0]

    def transition(self, state, received):
        return (state[0], received)

    def output(self, state):
        return state[1]


class TestPinnedSchedule:
    """The concrete shuffle outcomes of the stream schedule, pinned."""

    def test_seed0_round1_and_round2(self):
        ex = Execution(RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=0)
        ex.step()
        assert ex.outputs() == [(3, 1, 2, 0), (0, 1), (0, 2), (0, 3)]
        ex.step()
        assert ex.outputs() == [(1, 0, 2, 3), (1, 0), (2, 0), (0, 3)]

    def test_seed7_round1(self):
        ex = Execution(RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=7)
        ex.run(1)
        assert ex.outputs() == [(0, 2, 1, 3), (1, 0), (2, 0), (3, 0)]

    def test_schedule_is_deterministic(self):
        a = Execution(RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=42).run(3)
        b = Execution(RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=42).run(3)
        assert a.outputs() == b.outputs()


class TestNoAliasing:
    def test_old_arithmetic_aliased_distinct_sites(self):
        # The defect being fixed: distinct (seed, t, j) triples collide.
        def old_site(seed, t, j):
            return seed * 1_000_003 + t * 9973 + j

        assert old_site(0, 2, 0) == old_site(0, 1, 9973)
        assert old_site(1, 1, 0) == old_site(0, 101, 2703)

    def test_stream_sites_consume_disjoint_segments(self):
        # Two executions from the same seed replay the same stream; the
        # shuffle at (t=2, j) sees a different stream position than
        # (t=1, j), so repeating inbox contents still reshuffle freshly.
        ex = Execution(RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=0)
        ex.step()
        first = ex.outputs()[0]
        ex.step()
        second = ex.outputs()[0]
        assert sorted(first) == sorted(second)  # same multiset...
        assert first != second  # ...different stream segment

    def test_scrambling_preserves_multisets(self):
        for seed in (0, 1, 2, 3, 123456789):
            ex = Execution(
                RecordOrder(), star_graph(5), inputs=[0, 1, 2, 3, 4], scramble_seed=seed
            ).run(1)
            assert sorted(ex.outputs()[0]) == [0, 1, 2, 3, 4]

    def test_none_still_disables_scrambling(self):
        ex = Execution(
            RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=None
        ).run(1)
        # In-edge order: the hub's in-edges are the leaves' edges then its
        # self-loop (construction order of star_graph).
        assert sorted(ex.outputs()[0]) == [0, 1, 2, 3]
        again = Execution(
            RecordOrder(), star_graph(4), inputs=[0, 1, 2, 3], scramble_seed=None
        ).run(1)
        assert ex.outputs() == again.outputs()
