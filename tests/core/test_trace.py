"""Unit tests for the structured tracing layer.

Covers the metrics registry's semantics (typed create-on-touch, merge
algebra, the deterministic projection), the tracer's event stream
against the independent single-purpose observers, the plan-cache hook's
save/restore discipline in the batch runner, and lossless JSONL
round-trips.
"""

import io

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.engine.batch import BatchJob, run_batch
from repro.core.engine.instrumentation import (
    BandwidthObserver,
    MessageCountObserver,
    StateDigestObserver,
)
from repro.core.engine.plan import PlanCache
from repro.core.engine.trace import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    attach_tracers,
    events_from_jsonl,
    events_to_jsonl,
    merged_metrics,
    read_jsonl,
    trace_execution,
    write_jsonl,
)
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring, random_strongly_connected


def traced_run(n=6, rounds=8, seed=1, algorithm=None, inputs=None):
    algorithm = algorithm if algorithm is not None else PushSumAlgorithm()
    inputs = inputs if inputs is not None else [float(v + 1) for v in range(n)]
    execution = Execution(algorithm, random_strongly_connected(n, seed=seed), inputs=inputs)
    tracer = trace_execution(execution, rounds=rounds)
    return execution, tracer


class TestMetricsPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        assert g.value is None and g.updates == 0
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5 and g.updates == 2

    def test_gauge_merge_skips_never_written(self):
        a, b = Gauge(), Gauge()
        a.set(7)
        a.merge(b)  # b never wrote: a keeps its value
        assert a.value == 7
        b.set(9)
        a.merge(b)
        assert a.value == 9 and a.updates == 2

    def test_histogram_moments(self):
        h = Histogram()
        assert h.mean is None
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max, h.mean) == (3, 6.0, 1.0, 3.0, 2.0)

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(5.0)
        b.observe(3.0)
        a.merge(b)
        assert (a.count, a.min, a.max) == (3, 1.0, 5.0)
        a.merge(Histogram())  # empty merge is a no-op
        assert a.count == 3


class TestMetricsRegistry:
    def test_create_on_touch_and_type_guard(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        assert "x" in r and len(r) == 1
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_merge_is_job_order_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("last").set("from-a")
        b.counter("n").inc(3)
        b.gauge("last").set("from-b")
        b.histogram("h").observe(1.0)
        a.merge(b)
        snap = a.as_dict()
        assert snap["n"]["value"] == 5
        assert snap["last"]["value"] == "from-b"  # later job wins
        assert snap["h"]["count"] == 1

    def test_deterministic_projection_drops_wall_clock(self):
        r = MetricsRegistry()
        r.counter("rounds").inc()
        r.histogram("round_wall_seconds").observe(0.1)
        assert set(r.as_dict()) == {"rounds", "round_wall_seconds"}
        assert set(r.as_dict(deterministic_only=True)) == {"rounds"}

    def test_dict_round_trip(self):
        r = MetricsRegistry()
        r.counter("c").inc(4)
        r.gauge("g").set(0.5)
        r.histogram("h").observe(2.0)
        again = MetricsRegistry.from_dict(r.as_dict())
        assert again.as_dict() == r.as_dict()


class TestTraceEvent:
    def test_dict_round_trip_and_equality(self):
        e = TraceEvent("round", round=3, messages=10, wall_seconds=0.01)
        again = TraceEvent.from_dict(e.to_dict())
        assert again == e
        assert again != TraceEvent("round", round=4, messages=10, wall_seconds=0.01)

    def test_deterministic_fields_excludes_seconds(self):
        e = TraceEvent("round", round=1, messages=2, wall_seconds=0.5)
        assert e.deterministic_fields() == {"messages": 2}


class TestTracer:
    def test_round_stream_matches_dedicated_observers(self):
        """The tracer's per-round fields must agree with the independent
        single-purpose observers watching the same execution."""
        n, rounds = 6, 8
        counts, digests = MessageCountObserver(), StateDigestObserver()
        execution = Execution(
            PushSumAlgorithm(),
            random_strongly_connected(n, seed=1),
            inputs=[float(v + 1) for v in range(n)],
        )
        execution.attach(counts)
        execution.attach(digests)
        tracer = trace_execution(execution, rounds=rounds)

        events = tracer.round_events()
        assert [e.round for e in events] == list(range(1, rounds + 1))
        assert [e.fields["messages"] for e in events] == counts.counts
        assert [e.fields["digest"] for e in events] == digests.digests
        assert tracer.registry.counter("rounds").value == rounds
        assert tracer.registry.counter("messages_delivered").value == counts.total

    def test_residual_shrinks_for_push_sum(self):
        _, tracer = traced_run(rounds=30)
        residuals = [e.fields["residual"] for e in tracer.round_events()]
        assert residuals[-1] < residuals[0]
        assert tracer.registry.gauge("residual").value == residuals[-1]

    def test_residual_falls_back_to_discrete_metric(self):
        # Set-flooding gossip on string inputs outputs frozensets of
        # strings — not numeric vectors — so the residual must come from
        # the discrete metric (1 until consensus, then 0).
        _, tracer = traced_run(
            rounds=10, algorithm=GossipAlgorithm(), inputs=list("abcdef")
        )
        residuals = [e.fields["residual"] for e in tracer.round_events()]
        assert set(residuals) <= {0.0, 1.0}
        assert residuals[-1] == 0.0  # consensus reached on n=6 within 10 rounds

    def test_plan_cache_hook_counts_hits_and_compiles(self):
        _, tracer = traced_run(rounds=8)
        reg = tracer.registry
        assert reg.counter("plan_compiles").value == 1  # static graph: one plan
        assert reg.counter("plan_hits").value == 7
        compile_events = [e for e in tracer.events if e.kind == "plan_compile"]
        assert len(compile_events) == 1
        assert compile_events[0].fields["n"] == 6

    def test_capture_events_off_keeps_metrics(self):
        execution = Execution(
            PushSumAlgorithm(), bidirectional_ring(4), inputs=[1.0, 2.0, 3.0, 4.0]
        )
        tracer = trace_execution(execution, rounds=5, tracer=Tracer(capture_events=False))
        assert tracer.events == []
        assert tracer.registry.counter("rounds").value == 5

    def test_watch_cache_returns_previous_hook(self):
        cache = PlanCache()
        sentinel = lambda *a: None  # noqa: E731
        cache.trace_hook = sentinel
        tracer = Tracer()
        assert tracer.watch_cache(cache) is sentinel
        assert cache.trace_hook == tracer.on_plan_event

    def test_deterministic_rounds_projection(self):
        _, tracer = traced_run(rounds=4)
        rows = tracer.deterministic_rounds()
        assert len(rows) == 4
        for row, event in zip(rows, tracer.round_events()):
            assert row[0] == event.round
            assert "wall" not in repr(row)  # no timing leaks into identity data


class TestBatchIntegration:
    def _jobs(self, count=3):
        return [
            BatchJob(
                GossipAlgorithm(max),
                random_strongly_connected(5, seed=s),
                inputs=list(range(5)),
                rounds=6,
                label=f"job-{s}",
            )
            for s in range(count)
        ]

    def test_attach_tracers_one_per_job(self):
        jobs = self._jobs()
        tracers = attach_tracers(jobs)
        assert len(tracers) == len(jobs)
        for job, tracer in zip(jobs, tracers):
            assert tracer in job.observers

    def test_shared_cache_hook_isolated_per_job(self):
        """On a shared sequential cache each job's tracer must see only its
        own compiles, and the pre-existing hook must be restored."""
        jobs = self._jobs()
        tracers = attach_tracers(jobs)
        cache = PlanCache()
        outer = []
        cache.trace_hook = lambda kind, plan, s: outer.append(kind)
        run_batch(jobs, plan_cache=cache)
        # Each job ran 6 rounds on its own static graph: 1 compile, 5 hits.
        for tracer in tracers:
            assert tracer.registry.counter("plan_compiles").value == 1
            assert tracer.registry.counter("plan_hits").value == 5
        assert cache.trace_hook is not None and not outer  # restored, unused

    def test_merged_metrics_accepts_results_and_tracers(self):
        jobs = self._jobs()
        tracers = attach_tracers(jobs)
        results = run_batch(jobs)
        from_results = merged_metrics(results).as_dict(deterministic_only=True)
        from_tracers = merged_metrics(tracers).as_dict(deterministic_only=True)
        assert from_results == from_tracers
        assert from_results["rounds"]["value"] == 18


class TestJsonl:
    def _trace(self):
        _, tracer = traced_run(rounds=5)
        return tracer

    def test_text_round_trip(self):
        tracer = self._trace()
        events = tracer.events + [tracer.summary_event()]
        manifest = {"kind": "trace", "seed": 1}
        text = events_to_jsonl(events, manifest=manifest)
        parsed_manifest, parsed = events_from_jsonl(text)
        assert parsed_manifest == manifest
        assert parsed == events

    def test_no_manifest(self):
        tracer = self._trace()
        manifest, parsed = events_from_jsonl(events_to_jsonl(tracer.events))
        assert manifest is None
        assert parsed == tracer.events

    def test_empty_stream(self):
        assert events_to_jsonl([]) == ""
        assert events_from_jsonl("") == (None, [])

    def test_file_round_trip(self, tmp_path):
        tracer = self._trace()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, tracer.events, manifest={"kind": "trace"})
        manifest, parsed = read_jsonl(path)
        assert manifest == {"kind": "trace"}
        assert parsed == tracer.events

    def test_file_object_round_trip(self):
        tracer = self._trace()
        buffer = io.StringIO()
        write_jsonl(buffer, tracer.events)
        manifest, parsed = read_jsonl(io.StringIO(buffer.getvalue()))
        assert manifest is None
        assert parsed == tracer.events
