"""The tracer's ring buffer: wraparound, lazy decode, atomic export.

The pre-PR-7 tracer appended one ``TraceEvent`` object (a dict of Python
scalars) per round, which made tracing-on runs ~19x slower than
untraced ones and let the event list grow without bound.  Rounds now
land in a preallocated structured-array ring decoded lazily at read
time; these tests pin the observable semantics of that change — the
:attr:`Tracer.events` view itself is already covered by the pre-existing
trace suite, which runs unchanged.
"""

import json
import os

import pytest

from repro.algorithms import GossipAlgorithm, PushSumAlgorithm
from repro.core.engine.trace import (
    DEFAULT_RING_CAPACITY,
    Tracer,
    events_from_jsonl,
    trace_execution,
)
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring, random_strongly_connected


def _traced_run(rounds, ring_capacity=DEFAULT_RING_CAPACITY, n=6, vector=False):
    g = random_strongly_connected(n, seed=1)
    ex = Execution(
        PushSumAlgorithm(), g, inputs=[float(v + 1) for v in range(n)], vector=vector
    )
    tracer = Tracer(ring_capacity=ring_capacity)
    trace_execution(ex, rounds=rounds, tracer=tracer)
    return tracer


class TestRingBuffer:
    def test_no_wraparound_below_capacity(self):
        tracer = _traced_run(10, ring_capacity=16)
        assert tracer.dropped_rounds == 0
        rounds = tracer.round_events()
        assert [e.round for e in rounds] == list(range(1, 11))

    def test_wraparound_keeps_last_k(self):
        tracer = _traced_run(25, ring_capacity=8)
        assert tracer.dropped_rounds == 17
        rounds = tracer.round_events()
        assert [e.round for e in rounds] == list(range(18, 26))

    def test_wraparound_exact_boundary(self):
        tracer = _traced_run(8, ring_capacity=8)
        assert tracer.dropped_rounds == 0
        assert [e.round for e in tracer.round_events()] == list(range(1, 9))

    def test_events_interleave_plan_and_round_in_order(self):
        tracer = _traced_run(5)
        kinds = [e.kind for e in tracer.events]
        # One compile for the static graph, then the rounds.
        assert kinds[0] == "plan_compile"
        assert kinds[1:] == ["round"] * 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(ring_capacity=0)

    def test_decoded_fields_are_plain_python(self):
        # int64/float64 leak from the structured array unless decoded;
        # json.dumps is the arbiter (np.int64 is not serializable).
        tracer = _traced_run(3)
        for event in tracer.events:
            json.dumps(event.to_dict())

    def test_residuals_off_decodes_none(self):
        g = bidirectional_ring(5)
        ex = Execution(GossipAlgorithm(max), g, inputs=list(range(5)))
        tracer = Tracer(residuals=False)
        trace_execution(ex, rounds=3, tracer=tracer)
        assert all(e.fields["residual"] is None for e in tracer.round_events())

    def test_events_view_is_fresh_per_read(self):
        tracer = _traced_run(4)
        first = tracer.events
        first.clear()
        assert len(tracer.events) == 4 + 1  # rounds + plan compile

    def test_ring_survives_pickle(self):
        import pickle

        tracer = _traced_run(6, ring_capacity=4)
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.dropped_rounds == tracer.dropped_rounds
        assert [e.to_dict() for e in clone.events] == [
            e.to_dict() for e in tracer.events
        ]


class TestExportJsonl:
    def test_roundtrip(self, tmp_path):
        tracer = _traced_run(7, ring_capacity=4)
        path = str(tmp_path / "trace.jsonl")
        assert tracer.export_jsonl(path, manifest={"kind": "test"}) == path
        manifest, events = events_from_jsonl(open(path).read())
        assert manifest == {"kind": "test"}
        assert events[-1].kind == "summary"
        decoded_rounds = [e for e in events if e.kind == "round"]
        assert [e.to_dict() for e in decoded_rounds] == [
            e.to_dict() for e in tracer.round_events()
        ]

    def test_without_summary(self, tmp_path):
        tracer = _traced_run(3)
        path = str(tmp_path / "trace.jsonl")
        tracer.export_jsonl(path, include_summary=False)
        _, events = events_from_jsonl(open(path).read())
        assert all(e.kind != "summary" for e in events)

    def test_crash_mid_export_leaves_previous_file(self, tmp_path, monkeypatch):
        tracer = _traced_run(3)
        path = str(tmp_path / "trace.jsonl")
        tracer.export_jsonl(path)
        before = open(path).read()

        # Fault injection: the atomic rename step dies.  The export goes
        # tempfile-then-replace, so the original must be untouched.
        real_replace = os.replace

        def exploding_replace(src, dst):
            if str(dst) == path:
                raise OSError("disk on fire")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            _traced_run(9).export_jsonl(path)
        assert open(path).read() == before
