"""Regression: unanimity must not depend on set iteration order.

Two equal frozensets can print in different orders (their layout depends
on insertion history and the per-process hash seed), so comparing
outputs by ``repr`` spuriously broke unanimity for set-valued outputs on
a fraction of hash seeds.  These tests pin the ``==``-first behavior.
"""

from repro.algorithms.gossip import GossipAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring, complete_graph


def adversarial_sets(values):
    """Equal frozensets built along different insertion orders."""
    import itertools

    variants = []
    for perm in itertools.permutations(values):
        s = frozenset()
        for v in perm:
            s = s | frozenset([v])
        variants.append(s)
    return variants


class TestSetValuedUnanimity:
    def test_unanimous_despite_construction_order(self):
        # Plant states that are equal sets built in every insertion order.
        values = ("x", "y", "z", "w")
        variants = adversarial_sets(values)[:4]
        g = complete_graph(4)
        ex = Execution(GossipAlgorithm(), g, initial_states=variants)
        assert ex.unanimous_output() == frozenset(values)

    def test_gossip_stabilizes_on_string_values(self):
        g = bidirectional_ring(4)
        ex = Execution(GossipAlgorithm(), g, inputs=["x", "y", "x", "z"])
        report = run_until_stable(ex, 20, patience=4, target=frozenset({"x", "y", "z"}))
        assert report.converged

    def test_disagreement_still_detected(self):
        g = complete_graph(3)
        states = [frozenset({"a"}), frozenset({"a"}), frozenset({"b"})]
        ex = Execution(GossipAlgorithm(), g, initial_states=states)
        assert ex.unanimous_output() is None
