"""Unit tests for the vector backend's plumbing.

The faithfulness contract (vector trajectories == object trajectories)
lives in ``tests/property/test_vector_properties.py``; these tests pin
the machinery around it: CSR index arrays, the kernel registry and its
faithful-subclass guard, activation/fallback bookkeeping, state
synchronization with the snapshot layer, and error-behavior parity.
"""

import numpy as np
import pytest

from repro.algorithms import GossipAlgorithm, MetropolisAlgorithm, PushSumAlgorithm
from repro.core.engine.plan import compile_plan
from repro.core.engine.vector import (
    CSRPlan,
    VectorExecution,
    clear_vector_stats,
    csr_for,
    kernel_for,
    register_kernel,
    vector_stats,
)
from repro.core.execution import Execution
from repro.graphs.builders import (
    bidirectional_ring,
    directed_ring,
    random_strongly_connected,
)
from repro.graphs.digraph import DiGraph


@pytest.fixture(autouse=True)
def _fresh_stats():
    clear_vector_stats()
    yield
    clear_vector_stats()


class TestCSRPlan:
    def test_matches_plan_arrays(self):
        g = random_strongly_connected(9, seed=3)
        plan = compile_plan(g)
        csr = csr_for(plan)
        assert csr.n == g.n
        assert csr.num_messages == plan.num_messages
        # Receiver j's in-edge slice reproduces the plan's source lists.
        for j in range(g.n):
            lo, hi = int(csr.indptr[j]), int(csr.indptr[j + 1])
            assert list(csr.sources[lo:hi]) == list(plan.sources[j])
            assert list(csr.ports[lo:hi]) == list(plan.source_ports[j])
            assert all(int(t) == j for t in csr.targets[lo:hi])
        assert list(csr.outdegrees) == list(plan.outdegrees)
        assert list(csr.indegrees) == [len(s) for s in plan.sources]

    def test_cached_on_plan(self):
        plan = compile_plan(bidirectional_ring(5))
        assert csr_for(plan) is csr_for(plan)

    def test_distinct_plans_distinct_csr(self):
        a = compile_plan(bidirectional_ring(5))
        b = compile_plan(bidirectional_ring(5))
        assert csr_for(a) is not csr_for(b)
        assert isinstance(csr_for(a), CSRPlan)


class TestKernelRegistry:
    def test_builtins_resolve(self):
        assert kernel_for(GossipAlgorithm(max)) is not None
        assert kernel_for(PushSumAlgorithm()) is not None
        assert kernel_for(MetropolisAlgorithm()) is not None

    def test_unknown_algorithm_has_no_kernel(self):
        from repro.core.agent import Algorithm

        class Exotic(Algorithm):
            def initial_state(self, input_value):
                return input_value

            def message(self, state):
                return state

            def transition(self, state, received):
                return state

            def output(self, state):
                return state

        assert kernel_for(Exotic()) is None

    def test_unfaithful_subclass_is_refused(self):
        class Tweaked(PushSumAlgorithm):
            def transition(self, state, received):
                return super().transition(state, received)

        assert kernel_for(Tweaked()) is None

    def test_faithful_subclass_is_served(self):
        # Overriding output (not the round function) keeps the kernel.
        class Rounded(PushSumAlgorithm):
            def output(self, state):
                return round(super().output(state), 3)

        assert kernel_for(Rounded()) is not None

    def test_register_kernel_extension(self):
        from repro.core.agent import Algorithm
        from repro.core.engine.vector import VectorKernel

        class Custom(Algorithm):
            def initial_state(self, input_value):
                return input_value

            def message(self, state):
                return state

            def transition(self, state, received):
                return state

            def output(self, state):
                return state

        class NullKernel(VectorKernel):
            pass

        register_kernel(Custom)(NullKernel)
        assert isinstance(kernel_for(Custom()), NullKernel)

    def test_factory_may_decline(self):
        from repro.core.agent import Algorithm

        class Declined(Algorithm):
            def initial_state(self, input_value):
                return input_value

            def message(self, state):
                return state

            def transition(self, state, received):
                return state

            def output(self, state):
                return state

        register_kernel(Declined)(lambda algorithm: None)
        assert kernel_for(Declined()) is None


class TestActivation:
    def test_execution_facade_dispatch(self):
        g = bidirectional_ring(6)
        ex = Execution(GossipAlgorithm(max), g, inputs=list(range(6)), vector=True)
        assert isinstance(ex, VectorExecution)
        assert ex.vector_active
        assert vector_stats()["activations"] == 1

    def test_quotient_wins_over_vector(self):
        from repro.core.engine.quotient import QuotientExecution

        g = bidirectional_ring(6)
        ex = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6, quotient=True, vector=True
        )
        assert isinstance(ex, QuotientExecution)

    def test_no_kernel_falls_back(self):
        class Tweaked(PushSumAlgorithm):
            def transition(self, state, received):
                return super().transition(state, received)

        g = bidirectional_ring(4)
        ex = Execution(Tweaked(), g, inputs=[1.0] * 4, vector=True)
        assert isinstance(ex, VectorExecution)
        assert not ex.vector_active
        assert ex.vector_fallback_reason == "no-kernel"
        stats = vector_stats()
        assert stats["fallbacks"] == 1
        assert stats["fallback_reasons"] == {"no-kernel": 1}
        # ...and the object path still runs correctly.
        ex.run(6)
        direct = Execution(Tweaked(), g, inputs=[1.0] * 4).run(6)
        assert ex.outputs() == direct.outputs()

    def test_pack_failure_falls_back(self):
        g = bidirectional_ring(4)
        # Gossip states must be sets; a scalar initial state can't pack.
        ex = Execution(
            GossipAlgorithm(max), g, initial_states=[1, 2, 3, 4], vector=True
        )
        assert not ex.vector_active
        assert ex.vector_fallback_reason == "pack-failed"

    def test_round_counters_split_observed(self):
        g = bidirectional_ring(5)
        ex = Execution(GossipAlgorithm(max), g, inputs=list(range(5)), vector=True)
        ex.run(3)
        assert vector_stats()["vector_rounds"] == 3

        from repro.core.engine.instrumentation import MessageCountObserver

        ex.attach(MessageCountObserver())
        ex.run(2)
        stats = vector_stats()
        assert stats["vector_rounds"] == 3
        assert stats["observed_rounds"] == 2


class TestStateSync:
    def test_states_setter_repacks(self):
        g = bidirectional_ring(4)
        ex = Execution(
            GossipAlgorithm(max), g, inputs=[1, 2, 3, 4], vector=True
        )
        ex.run(1)
        ex.states = [frozenset([9])] * 4
        assert ex.vector_active
        ex.run(1)
        assert ex.outputs() == [9] * 4

    def test_states_setter_demotes_on_unpackable(self):
        g = bidirectional_ring(4)
        ex = Execution(GossipAlgorithm(max), g, inputs=[1, 2, 3, 4], vector=True)
        ex.run(2)
        ex.states = [object()] * 4  # not iterable sets: leaves the kernel
        assert not ex.vector_active
        assert ex.vector_fallback_reason == "pack-failed"
        assert ex.round_number == 2

    def test_snapshot_roundtrip(self):
        g = random_strongly_connected(7, seed=2)
        inputs = [float(v + 1) for v in range(7)]
        ex = Execution(PushSumAlgorithm(), g, inputs=inputs, vector=True)
        ex.run(5)
        snap = ex.snapshot()

        resumed = Execution(PushSumAlgorithm(), g, inputs=inputs, vector=True)
        resumed.restore(snap)
        assert resumed.round_number == 5
        resumed.run(3)

        straight = Execution(PushSumAlgorithm(), g, inputs=inputs, vector=True).run(8)
        assert resumed.states == straight.states

    def test_round_number_tracks_vector_rounds(self):
        g = bidirectional_ring(5)
        ex = Execution(GossipAlgorithm(max), g, inputs=list(range(5)), vector=True)
        assert ex.round_number == 0
        ex.step()
        ex.step()
        assert ex.round_number == 2


class TestErrorParity:
    def test_zero_outdegree_raises_like_object_engine(self):
        # Vertex 2 sends to nobody (no self-loop): Push-Sum's sending
        # function divides by outdegree on both paths.
        g = DiGraph(
            3, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)], ensure_self_loops=False
        )
        bad = DiGraph(3, [(0, 1), (1, 0), (1, 2)], ensure_self_loops=False)
        inputs = [1.0, 2.0, 3.0]
        direct = Execution(PushSumAlgorithm(), bad, inputs=inputs, check_model=False)
        vec = Execution(
            PushSumAlgorithm(), bad, inputs=inputs, check_model=False, vector=True
        )
        assert vec.vector_active
        with pytest.raises(ZeroDivisionError):
            direct.step()
        with pytest.raises(ZeroDivisionError):
            vec.step()

    def test_model_checks_still_enforced(self):
        from repro.core.models import CommunicationModel

        class SymGossip(GossipAlgorithm):
            model = CommunicationModel.SYMMETRIC

        asym = directed_ring(5)
        ex = Execution(SymGossip(max), asym, inputs=list(range(5)), vector=True)
        assert ex.vector_active
        with pytest.raises(ValueError, match="not symmetric"):
            ex.step()
