"""docs/API.md must track the actual public API."""

from pathlib import Path

import repro

API_MD = (Path(__file__).resolve().parents[2] / "docs" / "API.md").read_text()


class TestApiReference:
    def test_every_documented_name_exists(self):
        import re

        for name in re.findall(r"`(\w+)`", API_MD):
            if name in ("repro", "help", "SIMPLE_BROADCAST", "OUTDEGREE_AWARE",
                        "SYMMETRIC", "OUTPUT_PORT_AWARE", "ONE_BIT_BROADCAST",
                        "NONE", "BOUND_N",
                        "EXACT_N", "LEADER", "SET_BASED", "FREQUENCY_BASED",
                        "MULTISET_BASED"):
                continue
            assert hasattr(repro, name) or _is_submodule_path(name), name

    def test_headline_exports_are_documented(self):
        for name in (
            "Execution",
            "StaticFunctionAlgorithm",
            "PushSumAlgorithm",
            "HistoryTreeAlgorithm",
            "minimum_base",
            "ring_collapse",
            "reproduce_table1",
            "computable_class",
        ):
            assert f"`{name}`" in API_MD, f"{name} missing from API.md"


def _is_submodule_path(name: str) -> bool:
    import importlib

    try:
        importlib.import_module(f"repro.{name}")
        return True
    except ImportError:
        return False
