"""The documentation must not rot: run its code, check its claims."""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestReadmeSnippet:
    def test_quickstart_block_executes(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README must contain a python quickstart block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_package_docstring_snippet_executes(self):
        import repro

        doc = repro.__doc__
        snippet = re.search(r"Quickstart::\n\n(.*)\Z", doc, flags=re.S).group(1)
        code = "\n".join(line[4:] for line in snippet.splitlines())
        exec(compile(code, "<repro.__doc__>", "exec"), {})


class TestDocsMentionRealArtifacts:
    def test_design_lists_every_bench_file(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            # Every bench either appears in DESIGN.md's experiment index or
            # is one of the extensions added beyond it (A5/A6 live in
            # EXPERIMENTS.md).
            experiments = (REPO / "EXPERIMENTS.md").read_text()
            assert bench.name in design or bench.name in experiments, bench.name

    def test_experiments_covers_both_tables(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "Table 1" in text and "Table 2" in text
        assert "16 cells match" in text or "all 16 cells" in text.lower()

    def test_examples_referenced_in_readme_exist(self):
        readme = (REPO / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (REPO / "examples" / name).exists(), name

    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a module docstring"
