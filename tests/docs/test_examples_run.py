"""Every example script must run to completion (they self-assert)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"
