"""Execute every python block of docs/TUTORIAL.md — tutorials must run."""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"


def python_blocks():
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestTutorialBlocks:
    def test_tutorial_exists_and_has_blocks(self):
        blocks = python_blocks()
        assert len(blocks) >= 6

    @pytest.mark.parametrize("index", range(len(python_blocks())))
    def test_block_executes(self, index, capsys):
        block = python_blocks()[index]
        exec(compile(block, f"<TUTORIAL block {index}>", "exec"), {})

    def test_claimed_outputs_appear(self, capsys):
        # Spot-check printed claims from block 0 and the fibration block.
        blocks = python_blocks()
        exec(compile(blocks[0], "<t0>", "exec"), {})
        assert "frozenset({1, 2, 3})" in capsys.readouterr().out
        exec(compile(blocks[3], "<t3>", "exec"), {})
        out = capsys.readouterr().out
        assert "2" in out and "[1, 4]" in out and "True" in out
