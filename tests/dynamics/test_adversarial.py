"""Tests for the adversarial dynamic schedules."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.dynamics.adversarial import (
    bottleneck_dynamic,
    rooted_tree_dynamic,
    rotating_star_dynamic,
)
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.graphs.properties import is_strongly_connected, is_symmetric

INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
AVG = sum(INPUTS) / 6


class TestSchedules:
    def test_rotating_star_shape(self):
        dyn = rotating_star_dynamic(6)
        g1, g2 = dyn.graph_at(1), dyn.graph_at(2)
        assert is_symmetric(g1)
        assert g1.outdegree(1 % 6) == 6  # hub of round 1
        assert g2.outdegree(2 % 6) == 6
        # Relaying hops through a *different* hub each round, so the
        # dynamic diameter is small but greater than the per-round 2.
        assert 2 < dynamic_diameter(dyn, horizon=6) <= 6

    def test_rooted_tree_connected_over_two_rounds(self):
        dyn = rooted_tree_dynamic(6, seed=1)
        for t in range(1, 5):
            assert is_strongly_connected(dyn.graph_at(t))

    def test_bottleneck_diameter(self):
        dyn = bottleneck_dynamic(6, bridge_every=3)
        d = dynamic_diameter(dyn, horizon=6)
        assert 2 <= d <= 5  # must wait for the bridge

    def test_validation(self):
        with pytest.raises(ValueError):
            rotating_star_dynamic(1)
        with pytest.raises(ValueError):
            bottleneck_dynamic(3)


class TestAlgorithmsOnAdversarialSchedules:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: rotating_star_dynamic(6),
            lambda: rooted_tree_dynamic(6, seed=2),
            lambda: bottleneck_dynamic(6, bridge_every=3),
        ],
        ids=["rotating-star", "rooted-tree", "bottleneck"],
    )
    def test_push_sum_converges(self, make):
        ex = Execution(PushSumAlgorithm(), make(), inputs=INPUTS)
        report = run_until_asymptotic(ex, 4000, tolerance=1e-7, target=AVG)
        assert report.converged

    def test_metropolis_on_rotating_star(self):
        ex = Execution(MetropolisAlgorithm(), rotating_star_dynamic(6), inputs=INPUTS)
        report = run_until_asymptotic(ex, 4000, tolerance=1e-7, target=AVG)
        assert report.converged

    def test_gossip_on_bottleneck(self):
        dyn = bottleneck_dynamic(6, bridge_every=4)
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 2, 3, 9, 4, 5])
        report = run_until_stable(ex, 40, patience=4, target=9)
        assert report.converged

    def test_bottleneck_slower_than_random(self):
        # The shape claim: the bottleneck schedule mixes more slowly than a
        # random dense dynamic graph of the same size.
        def rounds(net):
            ex = Execution(PushSumAlgorithm(), net, inputs=INPUTS)
            report = run_until_asymptotic(ex, 6000, tolerance=1e-8, target=AVG)
            assert report.converged
            return report.stabilization_round

        slow = rounds(bottleneck_dynamic(6, bridge_every=4))
        fast = rounds(random_dynamic_strongly_connected(6, seed=3))
        assert slow > fast
