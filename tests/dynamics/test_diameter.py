"""Tests for dynamic diameter computation (§2.1)."""

import pytest

from repro.dynamics.diameter import dynamic_diameter, window_to_completeness
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph, StaticAsDynamic
from repro.graphs.builders import complete_graph, directed_ring
from repro.graphs.digraph import DiGraph


class TestWindowToCompleteness:
    def test_complete_graph_window_one(self):
        dyn = StaticAsDynamic(complete_graph(4))
        assert window_to_completeness(dyn, 1, 5) == 1

    def test_directed_ring_needs_n_minus_one(self):
        dyn = StaticAsDynamic(directed_ring(5))
        assert window_to_completeness(dyn, 1, 10) == 4

    def test_none_when_never_complete(self):
        quiet = DiGraph(3, [], ensure_self_loops=True)
        dyn = StaticAsDynamic(quiet)
        assert window_to_completeness(dyn, 1, 5) is None


class TestDynamicDiameter:
    def test_static_matches_diameter(self):
        assert dynamic_diameter(StaticAsDynamic(directed_ring(6)), horizon=3) == 5

    def test_disconnected_rounds_allowed(self):
        # Alternating quiet/complete rounds: from a quiet round the window
        # needs 2 rounds; the dynamic diameter is 2 (§2.1's remark).
        quiet = DiGraph(4, [], ensure_self_loops=True)
        dyn = PeriodicDynamicGraph([quiet, complete_graph(4)])
        assert dynamic_diameter(dyn, horizon=4) == 2

    def test_infinite_diameter_detected(self):
        quiet = DiGraph(3, [], ensure_self_loops=True)
        with pytest.raises(ValueError, match="infinite"):
            dynamic_diameter(StaticAsDynamic(quiet), horizon=2, max_diameter=10)

    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            dynamic_diameter(StaticAsDynamic(complete_graph(2)), horizon=0)
