"""Tests for dynamic graph wrappers."""

import pytest

from repro.dynamics.dynamic_graph import (
    FunctionDynamicGraph,
    PeriodicDynamicGraph,
    SequenceDynamicGraph,
    StaticAsDynamic,
)
from repro.graphs.builders import bidirectional_ring, directed_ring


class TestStaticAsDynamic:
    def test_constant(self):
        g = directed_ring(4)
        dyn = StaticAsDynamic(g)
        assert dyn.graph_at(1) is g
        assert dyn.graph_at(100) is g

    def test_round_numbering(self):
        dyn = StaticAsDynamic(directed_ring(3))
        with pytest.raises(ValueError):
            dyn.graph_at(0)


class TestSequence:
    def test_last_repeats(self):
        a, b = directed_ring(3), bidirectional_ring(3)
        dyn = SequenceDynamicGraph([a, b])
        assert dyn.graph_at(1) is a
        assert dyn.graph_at(2) is b
        assert dyn.graph_at(50) is b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SequenceDynamicGraph([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SequenceDynamicGraph([directed_ring(3), directed_ring(4)])


class TestPeriodic:
    def test_cycling(self):
        a, b = directed_ring(3), bidirectional_ring(3)
        dyn = PeriodicDynamicGraph([a, b])
        assert dyn.graph_at(1) is a
        assert dyn.graph_at(2) is b
        assert dyn.graph_at(3) is a
        assert dyn.graph_at(4) is b


class TestFunctionGraph:
    def test_memoization(self):
        calls = []

        def fn(t):
            calls.append(t)
            return directed_ring(3)

        dyn = FunctionDynamicGraph(3, fn)
        dyn.graph_at(1)
        dyn.graph_at(1)
        assert calls == [1]

    def test_size_validated(self):
        dyn = FunctionDynamicGraph(4, lambda t: directed_ring(3))
        with pytest.raises(ValueError):
            dyn.graph_at(1)

    def test_window(self):
        dyn = PeriodicDynamicGraph([directed_ring(3), bidirectional_ring(3)])
        w = dyn.window(1, 3)
        assert len(w) == 3
        assert w[0] is w[2]
