"""Tests for random dynamic graph generators."""

from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    random_dynamic_symmetric,
    sparse_pulsed_dynamic,
)
from repro.graphs.properties import is_strongly_connected, is_symmetric


class TestRandomDynamic:
    def test_symmetric_every_round(self):
        dyn = random_dynamic_symmetric(6, seed=1)
        for t in range(1, 8):
            g = dyn.graph_at(t)
            assert is_symmetric(g)
            assert is_strongly_connected(g)
            assert g.all_have_self_loops()

    def test_strongly_connected_every_round(self):
        dyn = random_dynamic_strongly_connected(6, seed=1)
        for t in range(1, 8):
            assert is_strongly_connected(dyn.graph_at(t))

    def test_determinism(self):
        a = random_dynamic_symmetric(5, seed=9)
        b = random_dynamic_symmetric(5, seed=9)
        for t in range(1, 6):
            assert a.graph_at(t) == b.graph_at(t)

    def test_rounds_differ(self):
        dyn = random_dynamic_strongly_connected(6, seed=2)
        assert any(dyn.graph_at(1) != dyn.graph_at(t) for t in range(2, 6))

    def test_finite_dynamic_diameter(self):
        dyn = random_dynamic_symmetric(5, seed=3)
        assert dynamic_diameter(dyn, horizon=4) <= 4  # connected rounds: <= n-1


class TestPulsed:
    def test_quiet_rounds_are_isolated(self):
        dyn = sparse_pulsed_dynamic(5, pulse_every=3, seed=0)
        g1 = dyn.graph_at(1)
        assert g1.num_edges == 5  # self-loops only
        g3 = dyn.graph_at(3)
        assert is_strongly_connected(g3)

    def test_diameter_finite_despite_disconnection(self):
        dyn = sparse_pulsed_dynamic(4, pulse_every=2, seed=1)
        d = dynamic_diameter(dyn, horizon=4)
        assert d >= 2  # cannot complete without a pulse
        assert d <= 2 * 4  # bounded by pulses

    def test_directed_variant(self):
        dyn = sparse_pulsed_dynamic(5, pulse_every=2, seed=2, symmetric=False)
        assert is_strongly_connected(dyn.graph_at(2))
