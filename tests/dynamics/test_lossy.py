"""Failure-injection tests: algorithms under random link loss."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.dynamics.lossy import LossyDynamicGraph
from repro.graphs.builders import complete_graph, random_symmetric_connected
from repro.graphs.properties import is_symmetric

INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
AVG = sum(INPUTS) / 6


class TestWrapper:
    def test_zero_loss_is_identity(self):
        base = StaticAsDynamic(complete_graph(4))
        lossy = LossyDynamicGraph(base, 0.0, seed=1)
        assert lossy.graph_at(1) == base.graph_at(1)

    def test_self_loops_never_dropped(self):
        base = StaticAsDynamic(complete_graph(5))
        lossy = LossyDynamicGraph(base, 0.9, seed=2)
        for t in range(1, 6):
            assert lossy.graph_at(t).all_have_self_loops()

    def test_loss_actually_drops(self):
        base = StaticAsDynamic(complete_graph(6))
        lossy = LossyDynamicGraph(base, 0.5, seed=3)
        assert lossy.graph_at(1).num_edges < base.graph_at(1).num_edges

    def test_symmetric_loss_preserves_symmetry(self):
        base = StaticAsDynamic(complete_graph(6))
        lossy = LossyDynamicGraph(base, 0.5, seed=4, preserve_symmetry=True)
        for t in range(1, 8):
            assert is_symmetric(lossy.graph_at(t))

    def test_determinism(self):
        base = StaticAsDynamic(complete_graph(5))
        a = LossyDynamicGraph(base, 0.3, seed=5)
        b = LossyDynamicGraph(base, 0.3, seed=5)
        assert a.graph_at(3) == b.graph_at(3)

    def test_invalid_probability(self):
        base = StaticAsDynamic(complete_graph(3))
        with pytest.raises(ValueError):
            LossyDynamicGraph(base, 1.0)


class TestAlgorithmsUnderLoss:
    def test_gossip_with_heavy_loss(self):
        base = StaticAsDynamic(complete_graph(6))
        lossy = LossyDynamicGraph(base, 0.7, seed=6)
        ex = Execution(GossipAlgorithm(max), lossy, inputs=[1, 9, 2, 5, 3, 4])
        report = run_until_stable(ex, 60, patience=5, target=9)
        assert report.converged

    def test_push_sum_average_with_loss(self):
        base = random_dynamic_strongly_connected(6, seed=7)
        lossy = LossyDynamicGraph(base, 0.3, seed=7)
        ex = Execution(PushSumAlgorithm(), lossy, inputs=INPUTS)
        report = run_until_asymptotic(ex, 3000, tolerance=1e-7, target=AVG)
        assert report.converged

    def test_metropolis_with_symmetric_loss(self):
        base = StaticAsDynamic(complete_graph(6))
        lossy = LossyDynamicGraph(base, 0.4, seed=8, preserve_symmetry=True)
        ex = Execution(MetropolisAlgorithm(), lossy, inputs=INPUTS)
        report = run_until_asymptotic(ex, 3000, tolerance=1e-7, target=AVG)
        assert report.converged

    def test_exact_frequencies_with_loss(self):
        base = random_dynamic_strongly_connected(6, seed=9)
        lossy = LossyDynamicGraph(base, 0.25, seed=9)
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8)
        ints = [3, 1, 1, 4, 1, 4]
        report = run_until_stable(Execution(alg, lossy, inputs=ints), 2000, patience=10)
        assert report.converged

    def test_loss_slows_but_does_not_break(self):
        base = random_dynamic_strongly_connected(6, seed=10)

        def rounds_for(loss):
            net = LossyDynamicGraph(base, loss, seed=10) if loss else base
            ex = Execution(PushSumAlgorithm(), net, inputs=INPUTS)
            report = run_until_asymptotic(ex, 6000, tolerance=1e-7, target=AVG)
            assert report.converged
            return report.stabilization_round

        # The shape: more loss, more rounds — but still convergence.
        clean = rounds_for(0.0)
        noisy = rounds_for(0.5)
        assert noisy >= clean


lossy_params = st.tuples(
    st.integers(min_value=3, max_value=7),        # n
    st.integers(min_value=0, max_value=10_000),   # seed
    st.floats(min_value=0.0, max_value=0.8),      # loss probability
    st.integers(min_value=1, max_value=6),        # rounds to inspect
)


class TestSymmetryPreservationProperty:
    """``preserve_symmetry=True`` keeps every per-round graph symmetric —
    checked both on the raw schedule and through the compiled-plan engine,
    whose per-round plan validation rejects asymmetric graphs for
    ``SYMMETRIC``-model algorithms."""

    @settings(max_examples=25, deadline=None)
    @given(lossy_params)
    def test_every_round_graph_symmetric(self, p):
        n, seed, loss, rounds = p
        base = StaticAsDynamic(random_symmetric_connected(n, seed=seed))
        lossy = LossyDynamicGraph(base, loss, seed=seed, preserve_symmetry=True)
        for t in range(1, rounds + 1):
            assert is_symmetric(lossy.graph_at(t))

    @settings(max_examples=15, deadline=None)
    @given(lossy_params)
    def test_symmetric_model_engine_accepts_schedule(self, p):
        n, seed, loss, rounds = p
        base = StaticAsDynamic(random_symmetric_connected(n, seed=seed))
        lossy = LossyDynamicGraph(base, loss, seed=seed, preserve_symmetry=True)
        ex = Execution(MetropolisAlgorithm(), lossy, inputs=[float(i) for i in range(n)])
        ex.run(rounds)  # plan compilation re-checks symmetry every round
        assert ex.round_number == rounds


class TestLossScheduleDeterminismProperty:
    """For a fixed seed the loss schedule is a pure function of ``(seed, t)``
    — identical across wrapper instances, pickle boundaries, and the
    sequential vs process-parallel batch backends."""

    @settings(max_examples=25, deadline=None)
    @given(lossy_params)
    def test_schedule_survives_pickle_boundary(self, p):
        import pickle

        from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
        from repro.graphs.builders import random_strongly_connected

        n, seed, loss, rounds = p
        base = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + j) for j in range(3)]
        )
        lossy = LossyDynamicGraph(base, loss, seed=seed)
        shipped = pickle.loads(pickle.dumps(lossy))  # what a pool worker sees
        for t in range(1, rounds + 1):
            assert shipped.graph_at(t) == lossy.graph_at(t)

    def test_sequential_and_parallel_backends_agree(self):
        from repro.core.engine import BatchJob, run_batch
        from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
        from repro.graphs.builders import random_strongly_connected

        def jobs():
            out = []
            for s in range(4):
                base = PeriodicDynamicGraph(
                    [random_strongly_connected(5, seed=s + j) for j in range(3)]
                )
                lossy = LossyDynamicGraph(base, 0.4, seed=s)
                out.append(
                    BatchJob(
                        GossipAlgorithm(max),
                        lossy,
                        inputs=[s, 9, 2, 5, 3],
                        rounds=6,
                    )
                )
            return out

        sequential = run_batch(jobs(), parallel=False)
        fanned = run_batch(jobs(), parallel=True, workers=2)
        for seq, par in zip(sequential, fanned):
            assert par.execution.states == seq.execution.states
            assert par.outputs == seq.outputs
