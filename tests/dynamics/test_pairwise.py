"""Tests for the population-protocol-style pairwise scheduler."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.pairwise import random_matching_dynamic
from repro.graphs.properties import is_symmetric


class TestScheduler:
    def test_degree_at_most_one(self):
        dyn = random_matching_dynamic(7, seed=1)
        for t in range(1, 10):
            g = dyn.graph_at(t)
            for v in g.vertices():
                # self-loop + at most one partner
                assert g.outdegree(v) <= 2
                assert is_symmetric(g)

    def test_maximal_matching_pairs_everyone_even(self):
        dyn = random_matching_dynamic(6, seed=2)
        g = dyn.graph_at(1)
        paired = sum(1 for v in g.vertices() if g.outdegree(v) == 2)
        assert paired == 6

    def test_odd_leaves_one_single(self):
        dyn = random_matching_dynamic(5, seed=3)
        g = dyn.graph_at(1)
        paired = sum(1 for v in g.vertices() if g.outdegree(v) == 2)
        assert paired == 4

    def test_finite_dynamic_diameter_in_practice(self):
        dyn = random_matching_dynamic(5, seed=4)
        d = dynamic_diameter(dyn, horizon=3, max_diameter=400)
        assert d >= 3  # degree-1 rounds cannot complete quickly
        assert d < 400


class TestAlgorithmsOnMatchings:
    def test_gossip(self):
        dyn = random_matching_dynamic(6, seed=5)
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 5, 2, 5, 3, 4])
        report = run_until_stable(ex, 100, patience=5, target=5)
        assert report.converged

    def test_metropolis_average(self):
        dyn = random_matching_dynamic(6, seed=6)
        inputs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(ex, 4000, tolerance=1e-6, target=sum(inputs) / 6)
        assert report.converged

    def test_history_tree_exact_frequencies(self):
        # The population-protocol bridge: exact frequency computation over
        # pure pairwise interactions.
        from fractions import Fraction

        dyn = random_matching_dynamic(4, seed=7)
        ex = Execution(HistoryTreeAlgorithm(), dyn, inputs=[1, 1, 2, 1])
        report = run_until_stable(ex, 60, patience=5)
        assert report.converged
        assert report.value == {1: Fraction(3, 4), 2: Fraction(1, 4)}
