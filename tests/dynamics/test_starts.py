"""Tests for asynchronous starts as graph masking (§2.2, §5.3)."""

import pytest

from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.starts import AsynchronousStartGraph
from repro.graphs.builders import complete_graph


class TestMasking:
    def test_sleeping_agents_keep_only_self_loops(self):
        base = StaticAsDynamic(complete_graph(3))
        masked = AsynchronousStartGraph(base, [1, 1, 3])
        g1 = masked.graph_at(1)
        # Agent 2 is asleep: no edges to or from it except its self-loop.
        assert g1.out_neighbors(2) == [2]
        assert g1.in_neighbors(2) == [2]
        # Agents 0 and 1 talk normally.
        assert g1.has_edge(0, 1)

    def test_edges_appear_at_max_of_starts(self):
        base = StaticAsDynamic(complete_graph(2))
        masked = AsynchronousStartGraph(base, [2, 4])
        assert not masked.graph_at(3).has_edge(0, 1)
        assert masked.graph_at(4).has_edge(0, 1)

    def test_all_started_equals_base(self):
        base = StaticAsDynamic(complete_graph(3))
        masked = AsynchronousStartGraph(base, [1, 2, 2])
        assert masked.graph_at(2) == base.graph_at(2)

    def test_validation(self):
        base = StaticAsDynamic(complete_graph(3))
        with pytest.raises(ValueError):
            AsynchronousStartGraph(base, [1, 2])
        with pytest.raises(ValueError):
            AsynchronousStartGraph(base, [0, 1, 1])

    def test_latest_start(self):
        base = StaticAsDynamic(complete_graph(3))
        assert AsynchronousStartGraph(base, [1, 5, 2]).latest_start == 5

    def test_diameter_bound(self):
        # Dynamic diameter of the masked graph <= max(s_i) + D (§5.3).
        base = StaticAsDynamic(complete_graph(4))
        masked = AsynchronousStartGraph(base, [1, 2, 3, 3])
        d = dynamic_diameter(masked, horizon=4)
        assert d <= masked.latest_start + 1
