"""Tests for the §6 weak-connectivity regime (Moreau's setting)."""

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.dynamics.weak_connectivity import (
    certify_unbounded_diameter,
    eventually_split_dynamic,
    growing_gap_dynamic,
)

INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0]
AVG = sum(INPUTS) / 5


class TestGenerators:
    def test_growing_gaps_grow(self):
        dyn = growing_gap_dynamic(5, seed=1)
        windows = certify_unbounded_diameter(dyn, starts=[3, 9, 33, 65], cap=512)
        assert windows is not None
        # Window from round t must reach the next power-of-two pulse:
        # strictly growing along the probe points.
        assert windows == sorted(windows)
        assert windows[-1] > windows[0]

    def test_quiet_rounds_are_isolated(self):
        dyn = growing_gap_dynamic(4, seed=2)
        g3 = dyn.graph_at(3)
        assert g3.num_edges == 4  # self-loops only

    def test_split_really_splits(self):
        dyn = eventually_split_dynamic(6, split_at=4, seed=0)
        g = dyn.graph_at(10)
        reachable = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for w in g.out_neighbors(v):
                if w not in reachable:
                    reachable.add(w)
                    frontier.append(w)
        assert reachable == {0, 1, 2}


class TestAlgorithmsUnderWeakConnectivity:
    def test_gossip_still_computes_set_functions(self):
        dyn = growing_gap_dynamic(5, seed=3)
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 9, 2, 9, 5])
        report = run_until_stable(ex, 80, patience=10, target=9)
        assert report.converged

    def test_metropolis_converges_moreau(self):
        # Moreau's theorem covers symmetric models with recurrent
        # connectivity: Metropolis still reaches average consensus.
        dyn = growing_gap_dynamic(5, seed=4)
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 2000, tolerance=1e-6, target=AVG)
        assert report.converged

    def test_push_sum_converges_without_rate_guarantee(self):
        # Correctness survives (mixing recurs forever); only Theorem 5.2's
        # n²D log(1/ε) *rate* is void since D = ∞.
        dyn = growing_gap_dynamic(5, seed=5)
        ex = Execution(PushSumAlgorithm(), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 2000, tolerance=1e-6, target=AVG)
        assert report.converged


class TestPermanentSplitControl:
    def test_gossip_freezes_on_split(self):
        # Values introduced after the split never cross: put the maximum
        # in one half only and check the other half never learns it.
        dyn = eventually_split_dynamic(6, split_at=1, seed=1)  # split from round 1
        ex = Execution(GossipAlgorithm(max), dyn, inputs=[1, 2, 3, 9, 9, 9])
        ex.run(40)
        outs = ex.outputs()
        assert outs[:3] == [3, 3, 3]
        assert outs[3:] == [9, 9, 9]

    def test_average_unreachable_after_split(self):
        dyn = eventually_split_dynamic(6, split_at=1, seed=2)
        inputs = [0.0, 0.0, 0.0, 6.0, 6.0, 6.0]
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(ex, 300, tolerance=1e-6, target=3.0)
        assert not report.converged
        # Each half settles on its own average instead.
        outs = ex.outputs()
        assert all(abs(o - 0.0) < 1e-6 for o in outs[:3])
        assert all(abs(o - 6.0) < 1e-6 for o in outs[3:])
