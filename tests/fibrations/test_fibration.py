"""Tests for fibration checking, fibres, coverings, and the ring collapse."""

import pytest

from repro.fibrations.fibration import (
    fibres,
    is_covering,
    is_fibration,
    ring_collapse,
)
from repro.fibrations.minimum_base import minimum_base
from repro.fibrations.morphism import GraphMorphism, morphism_from_vertex_map
from repro.graphs.builders import bidirectional_ring, directed_ring, star_graph


class TestIsFibration:
    def test_identity_is_fibration(self):
        g = directed_ring(4)
        m = GraphMorphism(g, g, list(g.vertices()), list(range(g.num_edges)))
        assert is_fibration(m)

    def test_ring_mod_is_fibration(self):
        big, small = directed_ring(6), directed_ring(2)
        phi = morphism_from_vertex_map(big, small, [i % 2 for i in range(6)])
        assert phi is not None and is_fibration(phi)

    def test_star_projection_is_fibration(self):
        g = star_graph(4, values=["h", "l", "l", "l"])
        mb = minimum_base(g)
        assert is_fibration(mb.fibration)

    def test_non_epi_rejected_by_default(self):
        g = directed_ring(2)
        h = directed_ring(2)
        # Map everything onto vertex 0's component only: not surjective on
        # vertices is impossible for rings; craft with a bigger codomain.
        from repro.graphs.digraph import DiGraph

        big = DiGraph(1, [(0, 0)])
        small = DiGraph(2, [(0, 0), (1, 1)])
        phi = GraphMorphism(big, small, [0], [0])
        assert not is_fibration(phi)
        assert is_fibration(phi, require_epi=False)


class TestFibres:
    def test_ring_fibres(self):
        phi = ring_collapse(6, 3)
        fb = fibres(phi)
        assert fb == {0: [0, 3], 1: [1, 4], 2: [2, 5]}

    def test_fibre_sizes_sum_to_n(self):
        phi = ring_collapse(8, 4)
        assert sum(len(v) for v in fibres(phi).values()) == 8


class TestRingCollapse:
    @pytest.mark.parametrize("n,p", [(4, 2), (6, 3), (6, 2), (8, 4), (9, 3), (6, 1)])
    def test_collapse_is_fibration(self, n, p):
        assert is_fibration(ring_collapse(n, p))

    @pytest.mark.parametrize("n,p", [(4, 2), (6, 3)])
    def test_directed_collapse(self, n, p):
        assert is_fibration(ring_collapse(n, p, directed=True))

    def test_nondivisor_rejected(self):
        with pytest.raises(ValueError):
            ring_collapse(6, 4)

    def test_port_collapse_is_covering(self):
        phi = ring_collapse(6, 3, with_ports=True)
        assert is_fibration(phi)
        assert is_covering(phi)

    def test_port_collapse_small_base(self):
        # p = 2 forces a multigraph base; still a covering with ports.
        phi = ring_collapse(4, 2, with_ports=True)
        assert is_covering(phi)

    def test_outdegree_collapse_valued(self):
        phi = ring_collapse(6, 3, with_outdegrees=True)
        assert is_fibration(phi)
        assert all(v == 3 for v in phi.source_graph.values)

    def test_base_values_lifted(self):
        phi = ring_collapse(6, 3, base_values=["a", "b", "c"])
        assert phi.source_graph.values == ("a", "b", "c", "a", "b", "c")
        assert phi.target_graph.values == ("a", "b", "c")

    def test_base_values_length_checked(self):
        with pytest.raises(ValueError):
            ring_collapse(6, 3, base_values=["a"])


class TestCovering:
    def test_plain_collapse_not_covering_when_outdegrees_drop(self):
        # R_4 -> R_2 (bidirectional): base vertex has outdegree 2 + self,
        # total 3 out-edges but fibre vertices have 3 too... the base of the
        # quotient is a multigraph with matching out-structure, so this IS
        # a covering; a star projection is not.
        g = star_graph(4, values=["h", "l", "l", "l"])
        mb = minimum_base(g)
        assert is_fibration(mb.fibration)
        assert not is_covering(mb.fibration)
