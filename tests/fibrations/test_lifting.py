"""Tests for valuation/state lifting and the lifted function fᵠ (§3.1)."""

import pytest

from repro.fibrations.fibration import ring_collapse
from repro.fibrations.lifting import (
    lift_global_state,
    lift_valuation,
    lifted_function,
    pushdown_valuation,
)


class TestLiftValuation:
    def test_fibrewise_copy(self):
        phi = ring_collapse(6, 3)
        assert lift_valuation(phi, ["a", "b", "c"]) == ["a", "b", "c", "a", "b", "c"]

    def test_length_checked(self):
        phi = ring_collapse(6, 3)
        with pytest.raises(ValueError):
            lift_valuation(phi, ["a", "b"])

    def test_global_state_alias(self):
        phi = ring_collapse(4, 2)
        assert lift_global_state(phi, [1, 2]) == [1, 2, 1, 2]


class TestLiftedFunction:
    def test_sum_scales_with_fibres(self):
        phi = ring_collapse(6, 3)
        f_phi = lifted_function(phi, sum)
        # fᵠ(v) = f(vᵠ): the sum over the 6-ring of the lifted values.
        assert f_phi([1, 2, 3]) == 2 * (1 + 2 + 3)

    def test_average_invariant(self):
        phi = ring_collapse(8, 4)
        avg = lambda v: sum(v) / len(v)
        f_phi = lifted_function(phi, avg)
        assert f_phi([1, 2, 3, 4]) == avg([1, 2, 3, 4])

    def test_max_invariant(self):
        phi = ring_collapse(9, 3)
        assert lifted_function(phi, max)([5, 1, 7]) == 7


class TestPushdown:
    def test_roundtrip(self):
        phi = ring_collapse(6, 2)
        lifted = lift_valuation(phi, ["x", "y"])
        assert pushdown_valuation(phi, lifted) == ["x", "y"]

    def test_non_constant_fibre_rejected(self):
        phi = ring_collapse(4, 2)
        with pytest.raises(ValueError):
            pushdown_valuation(phi, ["a", "b", "c", "b"])

    def test_length_checked(self):
        phi = ring_collapse(4, 2)
        with pytest.raises(ValueError):
            pushdown_valuation(phi, ["a"])
