"""Tests for valuation/state lifting and the lifted function fᵠ (§3.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fibrations.fibration import ring_collapse
from repro.fibrations.lifting import (
    lift_global_state,
    lift_snapshot,
    lift_valuation,
    lifted_function,
    pushdown_global_state,
    pushdown_valuation,
)


class TestLiftValuation:
    def test_fibrewise_copy(self):
        phi = ring_collapse(6, 3)
        assert lift_valuation(phi, ["a", "b", "c"]) == ["a", "b", "c", "a", "b", "c"]

    def test_length_checked(self):
        phi = ring_collapse(6, 3)
        with pytest.raises(ValueError):
            lift_valuation(phi, ["a", "b"])

    def test_global_state_alias(self):
        phi = ring_collapse(4, 2)
        assert lift_global_state(phi, [1, 2]) == [1, 2, 1, 2]


class TestLiftedFunction:
    def test_sum_scales_with_fibres(self):
        phi = ring_collapse(6, 3)
        f_phi = lifted_function(phi, sum)
        # fᵠ(v) = f(vᵠ): the sum over the 6-ring of the lifted values.
        assert f_phi([1, 2, 3]) == 2 * (1 + 2 + 3)

    def test_average_invariant(self):
        phi = ring_collapse(8, 4)
        avg = lambda v: sum(v) / len(v)
        f_phi = lifted_function(phi, avg)
        assert f_phi([1, 2, 3, 4]) == avg([1, 2, 3, 4])

    def test_max_invariant(self):
        phi = ring_collapse(9, 3)
        assert lifted_function(phi, max)([5, 1, 7]) == 7


class TestPushdown:
    def test_roundtrip(self):
        phi = ring_collapse(6, 2)
        lifted = lift_valuation(phi, ["x", "y"])
        assert pushdown_valuation(phi, lifted) == ["x", "y"]

    def test_non_constant_fibre_rejected(self):
        phi = ring_collapse(4, 2)
        with pytest.raises(ValueError):
            pushdown_valuation(phi, ["a", "b", "c", "b"])

    def test_length_checked(self):
        phi = ring_collapse(4, 2)
        with pytest.raises(ValueError):
            pushdown_valuation(phi, ["a"])

    def test_fraction_int_equality_not_repr(self):
        # Regression: the fibre-constancy check used to compare repr()s,
        # which split Fraction(2, 1) from 2 even though they are equal.
        # The check now goes through the keys convention (payloads_equal),
        # so numerically-equal payloads of different types push down fine.
        phi = ring_collapse(4, 2)
        assert pushdown_valuation(phi, [Fraction(2, 1), 3, 2, Fraction(3, 1)]) == [
            Fraction(2, 1),
            3,
        ]
        # ...while genuinely unequal payloads still split the fibre.
        with pytest.raises(ValueError):
            pushdown_valuation(phi, ["2", 0, 2, 0])

    def test_global_state_alias(self):
        phi = ring_collapse(4, 2)
        assert pushdown_global_state(phi, [1, 2, 1, 2]) == [1, 2]

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),   # base size
        st.integers(min_value=2, max_value=4),   # fibre multiplicity
        st.data(),
    )
    def test_roundtrip_property(self, base_n, mult, data):
        # pushdown(lift(v)) == v for every base valuation v.
        phi = ring_collapse(base_n * mult, base_n)
        values = data.draw(
            st.lists(
                st.one_of(
                    st.integers(-5, 5),
                    st.fractions(min_value=-9, max_value=9, max_denominator=9),
                    st.text(max_size=3),
                ),
                min_size=base_n,
                max_size=base_n,
            )
        )
        assert pushdown_valuation(phi, lift_valuation(phi, values)) == values

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    def test_non_constant_raises_property(self, base_n, mult, salt):
        # Any valuation that is injective on a fibre of size >= 2 is not
        # fibrewise-constant and must be rejected.
        phi = ring_collapse(base_n * mult, base_n)
        values = [(v * 7919 + salt) for v in range(base_n * mult)]
        with pytest.raises(ValueError):
            pushdown_valuation(phi, values)


class TestLiftSnapshot:
    def test_roundtrip_through_quotient_execution(self):
        from repro.algorithms import GossipAlgorithm
        from repro.core.execution import Execution
        from repro.graphs.builders import hypercube
        from repro.store.snapshot import snapshot_execution

        g = hypercube(3)
        execution = Execution(GossipAlgorithm(max), g, inputs=[7] * g.n, quotient=True)
        assert execution.quotient_active
        execution.run(3)
        base_snapshot = snapshot_execution(execution.base_execution)
        lifted = lift_snapshot(execution.minimum_base.fibration, base_snapshot)
        assert lifted.n == g.n
        assert lifted.round_number == execution.round_number
        assert lifted.states() == execution.states

    def test_wrong_base_size_rejected(self):
        from repro.algorithms import GossipAlgorithm
        from repro.core.execution import Execution
        from repro.graphs.builders import bidirectional_ring
        from repro.store.snapshot import snapshot_execution

        phi = ring_collapse(6, 3)
        other = Execution(GossipAlgorithm(max), bidirectional_ring(4), inputs=[1] * 4)
        other.run(1)
        with pytest.raises(ValueError):
            lift_snapshot(phi, snapshot_execution(other))
