"""Tests for the coarsest equitable partition and minimum bases (§3.2)."""

import pytest

from repro.fibrations.fibration import is_fibration
from repro.fibrations.minimum_base import (
    equitable_partition,
    minimum_base,
    quotient_by_partition,
)
from repro.fibrations.prime import is_fibration_prime
from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    de_bruijn_graph,
    directed_ring,
    random_strongly_connected,
    star_graph,
    torus,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.isomorphism import are_isomorphic


class TestEquitablePartition:
    def test_unvalued_ring_collapses_fully(self):
        classes = equitable_partition(bidirectional_ring(6))
        assert len(set(classes)) == 1

    def test_values_refine(self):
        classes = equitable_partition(bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2]))
        assert len(set(classes)) == 2

    def test_asymmetric_values_fully_refine(self):
        g = directed_ring(4, values=[1, 2, 3, 4])
        assert len(set(equitable_partition(g))) == 4

    def test_star_two_classes(self):
        classes = equitable_partition(star_graph(5))
        assert len(set(classes)) == 2
        assert classes[1] == classes[2] == classes[3] == classes[4]
        assert classes[0] != classes[1]

    def test_torus_collapses(self):
        # Vertex-transitive and unvalued: single class.
        assert len(set(equitable_partition(torus(3, 3)))) == 1

    def test_colors_refine(self):
        plain = DiGraph(2, [(0, 1), (1, 0), (0, 0), (1, 1)])
        assert len(set(equitable_partition(plain))) == 1
        colored = DiGraph(2, [(0, 1, "a"), (1, 0, "b"), (0, 0, "s"), (1, 1, "s")])
        assert len(set(equitable_partition(colored))) == 2


class TestQuotient:
    def test_quotient_is_fibration(self, valued_ring6):
        mb = minimum_base(valued_ring6)
        assert is_fibration(mb.fibration)

    def test_non_equitable_rejected(self):
        g = star_graph(4)
        with pytest.raises(ValueError):
            quotient_by_partition(g, [0, 0, 0, 0])  # hub and leaves differ

    def test_value_refinement_enforced(self):
        g = DiGraph(2, [(0, 1), (1, 0), (0, 0), (1, 1)], values=["a", "b"])
        with pytest.raises(ValueError):
            quotient_by_partition(g, [0, 0])

    def test_partition_length_checked(self):
        with pytest.raises(ValueError):
            quotient_by_partition(directed_ring(3), [0, 0])

    def test_noncontiguous_labels_accepted(self):
        g = bidirectional_ring(4, values=[1, 2, 1, 2])
        mb = quotient_by_partition(g, [7, 3, 7, 3])
        assert mb.base.n == 2

    def test_fibre_accessors(self, valued_ring6):
        mb = minimum_base(valued_ring6)
        assert sorted(sum((mb.fibre(i) for i in range(mb.base.n)), [])) == list(range(6))
        assert mb.fibre_sizes == [3, 3]


class TestMinimumBase:
    def test_base_is_prime(self):
        for g in (
            bidirectional_ring(6, values=[1, 2, 1, 2, 1, 2]),
            star_graph(5),
            de_bruijn_graph(2, 3),
            random_strongly_connected(8, seed=1),
        ):
            mb = minimum_base(g)
            assert is_fibration_prime(mb.base)

    def test_idempotent(self):
        g = star_graph(6)
        base = minimum_base(g).base
        again = minimum_base(base).base
        assert are_isomorphic(base, again)

    def test_complete_graph_collapses_to_point(self):
        mb = minimum_base(complete_graph(5))
        assert mb.base.n == 1
        # The point base carries all n - 1 cross edges plus the self-loop.
        assert mb.base.num_edges == 5

    def test_base_preserves_values(self, valued_ring6):
        mb = minimum_base(valued_ring6)
        assert sorted(mb.base.values) == [1, 2]

    def test_base_edge_multiplicities(self):
        # Star: hub hears each of the k leaves -> base edge leaf->hub has
        # multiplicity k.
        g = star_graph(4, values=["h", "l", "l", "l"])
        mb = minimum_base(g)
        hub = mb.base.values.index("h")
        leaf = 1 - hub
        assert mb.base.edge_multiplicity(leaf, hub) == 3
        assert mb.base.edge_multiplicity(hub, leaf) == 1

    def test_isomorphism_invariance(self):
        # Relabeling vertices leaves the base unchanged up to isomorphism.
        g = random_strongly_connected(7, seed=5).with_values([1, 1, 2, 2, 1, 2, 1])
        perm = [3, 0, 6, 2, 5, 1, 4]
        specs = [(perm[e.source], perm[e.target], e.color) for e in g.edges]
        values = [None] * 7
        for v in g.vertices():
            values[perm[v]] = g.value(v)
        h = DiGraph(7, specs, values=values)
        assert are_isomorphic(minimum_base(g).base, minimum_base(h).base)


class TestEqualityKeying:
    """Colors and values key by equality (PR 1's ``unanimous_output``
    convention), not raw ``repr`` — ``Fraction(2, 1)`` and ``2`` are the
    same payload."""

    def test_fraction_and_int_values_share_a_class(self):
        from fractions import Fraction

        g = bidirectional_ring(6, values=[Fraction(2, 1), 2, 2.0, Fraction(2, 1), 2, 2.0])
        classes = equitable_partition(g)
        assert len(set(classes)) == 1
        assert minimum_base(g).base.n == 1

    def test_fraction_colored_graph_matches_int_colored_twin(self):
        from fractions import Fraction

        specs_frac = [(0, 1, Fraction(1, 1)), (1, 2, 2), (2, 0, Fraction(1, 1)), (0, 0, 2)]
        specs_int = [(0, 1, 1), (1, 2, 2), (2, 0, 1), (0, 0, 2)]
        g_frac = DiGraph(3, specs_frac, values=[5, 5, 5])
        g_int = DiGraph(3, specs_int, values=[5, 5, 5])
        # Same partition (labels may differ: canonical numbering keys on
        # the reprs of the representatives actually present).
        from repro.fibrations.minimum_base import same_partition

        assert same_partition(equitable_partition(g_frac), equitable_partition(g_int))
        assert minimum_base(g_frac).base.n == minimum_base(g_int).base.n

    def test_quotient_accepts_mixed_representations(self):
        from fractions import Fraction

        # One class whose in-edges mix Fraction(1, 1)- and 1.0-colored
        # edges: the quotient must still extend to a valid fibration
        # (regression — repr-keyed morphism matching used to reject it).
        g = DiGraph(
            4,
            [(0, 1, Fraction(1, 1)), (0, 2, 1.0), (1, 0, None), (2, 0, None), (3, 3, None)],
            values=["a", "b", "b", "c"],
        )
        mb = quotient_by_partition(g, equitable_partition(g))
        assert mb.fibration.is_valid()

    def test_equal_frozensets_key_equally(self):
        a = frozenset(["x", "y", "zz"])
        b = frozenset(["zz", "y", "x"])
        g = bidirectional_ring(4, values=[a, b, a, b])
        assert len(set(equitable_partition(g))) == 1
