"""Tests for graph morphisms and fibration-compatible vertex maps."""

import pytest

from repro.graphs.builders import bidirectional_ring, directed_ring
from repro.graphs.digraph import DiGraph
from repro.fibrations.morphism import GraphMorphism, morphism_from_vertex_map


def identity_morphism(g):
    return GraphMorphism(g, g, list(g.vertices()), list(range(g.num_edges)))


class TestValidation:
    def test_identity_is_valid(self):
        g = directed_ring(4)
        assert identity_morphism(g).is_valid()

    def test_source_commutation_checked(self):
        g = DiGraph(2, [(0, 1)])
        h = DiGraph(2, [(1, 0)])
        bad = GraphMorphism(g, h, [0, 1], [0])
        assert not bad.is_valid()
        assert any("source" in p for p in bad.validate())

    def test_value_preservation_checked(self):
        g = DiGraph(1, [(0, 0)], values=["a"])
        h = DiGraph(1, [(0, 0)], values=["b"])
        m = GraphMorphism(g, h, [0], [0])
        assert not m.is_valid()

    def test_color_preservation_checked(self):
        g = DiGraph(1, [(0, 0, "red")])
        h = DiGraph(1, [(0, 0, "blue")])
        assert not GraphMorphism(g, h, [0], [0]).is_valid()

    def test_wrong_lengths(self):
        g = directed_ring(3)
        m = GraphMorphism(g, g, [0, 1], [])
        assert not m.is_valid()


class TestClassification:
    def test_identity_is_iso_and_epi(self):
        g = directed_ring(4)
        m = identity_morphism(g)
        assert m.is_isomorphism()
        assert m.is_epimorphism()

    def test_non_surjective(self):
        g = DiGraph(1, [(0, 0)])
        h = DiGraph(2, [(0, 0), (1, 1)])
        m = GraphMorphism(g, h, [0], [0])
        assert m.is_valid()
        assert not m.is_epimorphism()


class TestComposition:
    def test_compose_vertex_maps(self):
        g = directed_ring(4)
        m = identity_morphism(g).compose(identity_morphism(g))
        assert m.vertex_map == tuple(g.vertices())

    def test_compose_mismatch(self):
        g, h = directed_ring(3), directed_ring(4)
        with pytest.raises(ValueError):
            identity_morphism(g).compose(identity_morphism(h))


class TestFromVertexMap:
    def test_ring_mod_collapse(self):
        big = directed_ring(6)
        small = directed_ring(3)
        phi = morphism_from_vertex_map(big, small, [i % 3 for i in range(6)])
        assert phi is not None
        assert phi.is_valid()
        assert phi.is_epimorphism()

    def test_incompatible_map_rejected(self):
        # Mapping everything to one vertex of a 2-ring can't match in-edges.
        big = bidirectional_ring(4)
        small = bidirectional_ring(2)
        assert morphism_from_vertex_map(big, small, [0, 0, 0, 0]) is None

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            morphism_from_vertex_map(directed_ring(3), directed_ring(3), [0, 1])
