"""Coverage for the remaining morphism/graph utilities."""

from repro.fibrations.fibration import is_covering, port_preserving_ring_collapse
from repro.graphs.builders import directed_ring
from repro.graphs.digraph import DiGraph


class TestMapEdge:
    def test_edges_map_to_commuting_images(self):
        phi = port_preserving_ring_collapse(6, 3)
        g, b = phi.source_graph, phi.target_graph
        for e in g.edges:
            image = phi.map_edge(e)
            assert image.source == phi(e.source)
            assert image.target == phi(e.target)
            assert repr(image.color) == repr(e.color)

    def test_port_preserving_shorthand_is_covering(self):
        assert is_covering(port_preserving_ring_collapse(8, 4))


class TestGraphDerivation:
    def test_edge_specs_roundtrip(self):
        g = DiGraph(3, [(0, 1, "a"), (1, 2), (2, 0, "b"), (0, 0)])
        rebuilt = DiGraph(3, g.edge_specs())
        assert rebuilt == g

    def test_with_colors(self):
        g = directed_ring(4)
        colored = g.with_colors(lambda e: e.source * 10 + e.target)
        for e in colored.edges:
            assert e.color == e.source * 10 + e.target
        # Structure unchanged.
        assert colored.n == g.n and colored.num_edges == g.num_edges
