"""Tests for fibration primality."""

from repro.fibrations.minimum_base import minimum_base
from repro.fibrations.prime import is_fibration_prime
from repro.graphs.builders import (
    bidirectional_ring,
    directed_ring,
    random_strongly_connected,
    star_graph,
)
from repro.graphs.digraph import DiGraph


class TestPrimality:
    def test_unvalued_ring_not_prime(self):
        assert not is_fibration_prime(bidirectional_ring(6))

    def test_distinct_values_prime(self):
        assert is_fibration_prime(directed_ring(4, values=[1, 2, 3, 4]))

    def test_single_vertex_prime(self):
        assert is_fibration_prime(DiGraph(1, [(0, 0)]))

    def test_star_not_prime(self):
        assert not is_fibration_prime(star_graph(5))

    def test_minimum_bases_are_prime(self):
        for seed in range(4):
            g = random_strongly_connected(8, seed=seed).with_values(
                [seed % 2, 1, 0, 1, 0, 1, 0, 1]
            )
            assert is_fibration_prime(minimum_base(g).base)

    def test_generic_random_graph_is_usually_prime(self):
        # A random graph with distinct degree structure almost surely has a
        # discrete equitable partition.
        g = random_strongly_connected(9, extra_edge_prob=0.35, seed=11)
        mb = minimum_base(g)
        assert is_fibration_prime(mb.base)
