"""Tests for the function-class lattice and empirical classification."""

from repro.functions.classes import (
    FunctionClass,
    frequency_based,
    is_class_empirically,
    multiset_based,
    set_based,
    smallest_class_empirically,
)
from repro.functions.library import AVERAGE, MAXIMUM, SUM


class TestLattice:
    def test_strict_inclusions(self):
        assert FunctionClass.SET_BASED < FunctionClass.FREQUENCY_BASED
        assert FunctionClass.FREQUENCY_BASED < FunctionClass.MULTISET_BASED

    def test_contains(self):
        assert FunctionClass.MULTISET_BASED.contains(FunctionClass.SET_BASED)
        assert not FunctionClass.SET_BASED.contains(FunctionClass.MULTISET_BASED)

    def test_labels(self):
        assert FunctionClass.FREQUENCY_BASED.label == "frequency-based"


class TestWrappers:
    def test_set_based_wrapper(self):
        f = set_based("count-distinct", len)
        assert f([1, 1, 2]) == 2
        assert f.declared_class is FunctionClass.SET_BASED

    def test_frequency_based_wrapper(self):
        f = frequency_based("freq-of-1", lambda nu: nu[1])
        assert f([1, 2]) == f([1, 1, 2, 2])

    def test_multiset_based_wrapper(self):
        f = multiset_based("total", lambda c: sum(v * m for v, m in c.items()))
        assert f([1, 2, 2]) == 5

    def test_empty_input_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            MAXIMUM([])


class TestEmpiricalClassification:
    def test_max_is_set_based(self):
        assert is_class_empirically(MAXIMUM, FunctionClass.SET_BASED, [1, 2, 3])

    def test_average_is_frequency_not_set(self):
        assert is_class_empirically(AVERAGE, FunctionClass.FREQUENCY_BASED, [1, 2, 3])
        assert not is_class_empirically(AVERAGE, FunctionClass.SET_BASED, [1, 2, 3])

    def test_sum_is_multiset_not_frequency(self):
        assert is_class_empirically(SUM, FunctionClass.MULTISET_BASED, [1, 2, 3])
        assert not is_class_empirically(SUM, FunctionClass.FREQUENCY_BASED, [1, 2, 3])

    def test_smallest_class(self):
        assert smallest_class_empirically(MAXIMUM, [1, 2, 3]) is FunctionClass.SET_BASED
        assert smallest_class_empirically(AVERAGE, [1, 2, 3]) is FunctionClass.FREQUENCY_BASED
        assert smallest_class_empirically(SUM, [1, 2, 3]) is FunctionClass.MULTISET_BASED

    def test_order_dependent_function_is_nothing(self):
        first = lambda v: v[0]
        assert smallest_class_empirically(first, [1, 2, 3]) is None
