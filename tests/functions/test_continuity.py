"""Tests for δ-continuity in frequency (§5.4)."""

import math

from repro.core.metrics import discrete_metric, euclidean_metric
from repro.functions.continuity import is_continuous_in_frequency_empirically
from repro.functions.frequency import FrequencyFunction
from repro.functions.library import AVERAGE, threshold_predicate


TARGET = FrequencyFunction({1: "1/2", 2: "1/2"})


class TestContinuity:
    def test_average_is_continuous(self):
        assert is_continuous_in_frequency_empirically(
            AVERAGE, TARGET, euclidean_metric, tolerance=0.05
        )

    def test_rational_threshold_discontinuous_at_threshold(self):
        # Φ with r = 1/2 probed exactly at frequency 1/2: realizations
        # land on both sides, so the (discrete-metric) outputs oscillate.
        phi = threshold_predicate(1, 0.5)
        assert not is_continuous_in_frequency_empirically(
            phi, TARGET, discrete_metric, tolerance=0.0, seed=3
        )

    def test_irrational_threshold_continuous(self):
        # r = 1/√2 can never be hit exactly by rational frequencies, so
        # outputs settle once realizations are close enough.
        phi = threshold_predicate(1, 1 / math.sqrt(2))
        target = FrequencyFunction({1: "1/4", 2: "3/4"})
        assert is_continuous_in_frequency_empirically(
            phi, target, discrete_metric, tolerance=0.0
        )

    def test_constant_function_trivially_continuous(self):
        const = lambda v: 42
        assert is_continuous_in_frequency_empirically(
            const, TARGET, discrete_metric, tolerance=0.0
        )
