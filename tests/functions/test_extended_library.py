"""Tests for the extended function library (mode, median, variance, ...)."""

from fractions import Fraction

import pytest

from repro.functions.classes import FunctionClass, smallest_class_empirically
from repro.functions.library import (
    COUNT_DISTINCT,
    EXTENDED_LIBRARY,
    MEDIAN,
    MODE,
    VARIANCE,
)


class TestValues:
    def test_mode(self):
        assert MODE([1, 2, 2, 3]) == 2
        assert MODE([5]) == 5

    def test_mode_tie_is_deterministic(self):
        assert MODE([1, 2]) == MODE([2, 1])

    def test_median(self):
        assert MEDIAN([5, 1, 3]) == 3
        assert MEDIAN([4, 1, 3, 2]) == 2  # lower median

    def test_variance(self):
        assert VARIANCE([2, 2, 2]) == 0
        assert VARIANCE([0, 2]) == Fraction(1)
        assert VARIANCE([0, 0, 6]) == Fraction(8)

    def test_count_distinct(self):
        assert COUNT_DISTINCT([1, 1, 2, 3, 3]) == 3


class TestDeclaredClasses:
    @pytest.mark.parametrize("fn,klass", EXTENDED_LIBRARY)
    def test_declared_matches_empirical(self, fn, klass):
        domain = [1, 2, 3]
        got = smallest_class_empirically(fn, domain, samples=150, seed=2)
        assert got is klass, f"{fn.name}: declared {klass}, measured {got}"

    def test_mode_is_not_set_based(self):
        assert MODE([1, 1, 2]) == 1
        assert MODE([1, 2, 2]) == 2  # same support, different value

    def test_median_is_frequency_based(self):
        assert MEDIAN([1, 2, 2]) == MEDIAN([1, 1, 2, 2, 2, 2])

    def test_variance_scaling_invariant(self):
        assert VARIANCE([0, 2]) == VARIANCE([0, 0, 2, 2])


class TestEndToEnd:
    def test_static_pipeline_computes_extended_functions(self):
        from repro.algorithms.frequency_static import StaticFunctionAlgorithm
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.core.models import CommunicationModel as CM
        from repro.graphs.builders import random_symmetric_connected

        inputs = [3, 1, 1, 4, 1, 4]
        g = random_symmetric_connected(6, seed=8)
        for fn in (MODE, MEDIAN, VARIANCE):
            alg = StaticFunctionAlgorithm(fn, CM.SYMMETRIC)
            report = run_until_stable(
                Execution(alg, g, inputs=inputs), 60, patience=4, target=fn(inputs)
            )
            assert report.converged, fn.name

    def test_history_tree_computes_extended_functions(self):
        from repro.algorithms.history_tree import HistoryTreeAlgorithm
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.dynamics.generators import random_dynamic_symmetric

        inputs = [3, 1, 1, 4, 1]
        dyn = random_dynamic_symmetric(5, seed=9)
        for fn in (MODE, MEDIAN):
            alg = HistoryTreeAlgorithm(f=fn)
            report = run_until_stable(
                Execution(alg, dyn, inputs=inputs), 24, patience=4, target=fn(inputs)
            )
            assert report.converged, fn.name
