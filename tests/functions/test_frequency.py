"""Tests for frequency functions and canonical vectors (§2.3)."""

from fractions import Fraction

import pytest

from repro.functions.frequency import (
    FrequencyFunction,
    canonical_vector,
    equivalent_in_frequency,
    frequencies_of,
)


class TestConstruction:
    def test_of_vector(self):
        nu = frequencies_of([1, 1, 2])
        assert nu[1] == Fraction(2, 3)
        assert nu[2] == Fraction(1, 3)
        assert nu[7] == 0

    def test_empty_vector_rejected(self):
        with pytest.raises(ValueError):
            frequencies_of([])

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            FrequencyFunction({1: Fraction(1, 2)})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FrequencyFunction({1: Fraction(3, 2), 2: Fraction(-1, 2)})

    def test_zero_entries_dropped(self):
        nu = FrequencyFunction({1: 1, 2: 0})
        assert nu.support() == [1]

    def test_accepts_fraction_like(self):
        nu = FrequencyFunction({"a": "1/4", "b": Fraction(3, 4)})
        assert nu["a"] == Fraction(1, 4)


class TestEquality:
    def test_scaling_invariance(self):
        assert frequencies_of([1, 2]) == frequencies_of([1, 2, 1, 2, 1, 2])

    def test_permutation_invariance(self):
        assert frequencies_of([1, 2, 2]) == frequencies_of([2, 1, 2])

    def test_multiplicity_sensitivity(self):
        assert frequencies_of([1, 2]) != frequencies_of([1, 2, 2])

    def test_hashable(self):
        s = {frequencies_of([1, 2]), frequencies_of([2, 1, 2, 1])}
        assert len(s) == 1

    def test_equivalent_in_frequency(self):
        assert equivalent_in_frequency([1, 2], [2, 1, 1, 2])
        assert not equivalent_in_frequency([1], [1, 2])


class TestCanonicalVector:
    def test_minimal_size_is_lcm(self):
        nu = FrequencyFunction({1: Fraction(1, 2), 2: Fraction(1, 3), 3: Fraction(1, 6)})
        assert nu.minimal_size() == 6

    def test_canonical_vector_roundtrip(self):
        for vec in ([1], [1, 2, 2], [5, 5, 5, 7], ["a", "b", "a", "b"]):
            canon = canonical_vector(vec)
            assert frequencies_of(canon) == frequencies_of(vec)
            assert len(canon) <= len(vec)

    def test_canonical_vector_is_smallest(self):
        assert canonical_vector([1, 1, 2, 2]) == [1, 2]

    def test_scaled_vector(self):
        nu = frequencies_of([1, 2])
        assert sorted(nu.scaled_vector(6)) == [1, 1, 1, 2, 2, 2]
        with pytest.raises(ValueError):
            nu.scaled_vector(3)

    def test_multiplicities_for(self):
        nu = frequencies_of([1, 1, 2])
        assert nu.multiplicities_for(6) == {1: 4, 2: 2}
        with pytest.raises(ValueError):
            nu.multiplicities_for(4)

    def test_items_sorted(self):
        nu = frequencies_of(["b", "a", "b"])
        assert [v for v, _ in nu.items()] == ["a", "b"]
