"""Tests for the concrete function library."""

from fractions import Fraction

import pytest

from repro.functions.classes import FunctionClass
from repro.functions.library import (
    AVERAGE,
    MAXIMUM,
    MINIMUM,
    SIZE,
    SUM,
    SUPPORT_SET,
    frequency_of,
    multiplicity_of,
    quot_sum,
    threshold_predicate,
)


class TestBasics:
    def test_min_max(self):
        assert MINIMUM([3, 1, 2]) == 1
        assert MAXIMUM([3, 1, 2]) == 3

    def test_support_set(self):
        assert SUPPORT_SET([1, 1, 2]) == frozenset({1, 2})

    def test_average_exact_rational(self):
        assert AVERAGE([1, 2]) == Fraction(3, 2)
        assert AVERAGE([1, 2, 1, 2]) == Fraction(3, 2)

    def test_sum_and_size(self):
        assert SUM([1, 2, 2]) == 5
        assert SIZE([1, 2, 2]) == 3

    def test_declared_classes(self):
        assert MAXIMUM.declared_class is FunctionClass.SET_BASED
        assert AVERAGE.declared_class is FunctionClass.FREQUENCY_BASED
        assert SUM.declared_class is FunctionClass.MULTISET_BASED


class TestParameterizedFunctions:
    def test_frequency_of(self):
        f = frequency_of(1)
        assert f([1, 2, 1, 1]) == Fraction(3, 4)
        assert f([2]) == 0

    def test_multiplicity_of(self):
        f = multiplicity_of("x")
        assert f(["x", "y", "x"]) == 2

    def test_threshold_predicate(self):
        phi = threshold_predicate(1, 0.5)
        assert phi([1, 1, 2]) == 1
        assert phi([1, 2, 2]) == 0

    def test_threshold_boundary_inclusive(self):
        phi = threshold_predicate(1, 0.5)
        assert phi([1, 2]) == 1  # ν = 1/2 >= 1/2


class TestQuotSum:
    def test_basic(self):
        assert quot_sum([(1.0, 1.0), (3.0, 1.0)]) == 2.0

    def test_weighted(self):
        assert quot_sum([(2.0, 1.0), (2.0, 3.0)]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quot_sum([])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            quot_sum([(1.0, 0.0)])
