"""Tests for modular-counting predicates (the Presburger connection)."""

import pytest

from repro.functions.classes import FunctionClass, smallest_class_empirically
from repro.functions.library import modular_count_predicate


class TestValues:
    def test_basic(self):
        phi = modular_count_predicate(1, 3)
        assert phi([1, 1, 1]) == 1  # 3 ≡ 0 (mod 3)
        assert phi([1, 1]) == 0
        assert phi([2, 2, 2]) == 1  # 0 ≡ 0 (mod 3)

    def test_residue(self):
        phi = modular_count_predicate("a", 2, residue=1)
        assert phi(["a"]) == 1
        assert phi(["a", "a"]) == 0

    def test_modulus_validated(self):
        with pytest.raises(ValueError):
            modular_count_predicate(1, 1)


class TestClassSeparation:
    def test_multiset_based_but_not_frequency_based(self):
        phi = modular_count_predicate(1, 3)
        got = smallest_class_empirically(phi, [1, 2], samples=300, seed=4)
        assert got is FunctionClass.MULTISET_BASED

    def test_doubling_flips_it(self):
        # The witness: same frequencies, different predicate value.
        phi = modular_count_predicate(1, 2, residue=1)
        v = [1, 2]
        w = [1, 1, 2, 2]
        assert phi(v) == 1 and phi(w) == 0


class TestComputability:
    def test_computable_with_known_n_static(self):
        from repro.algorithms.multiset_static import known_size_algorithm
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.core.models import CommunicationModel as CM
        from repro.graphs.builders import random_symmetric_connected

        phi = modular_count_predicate(1, 3)
        inputs = [1, 1, 1, 2, 2, 2]
        g = random_symmetric_connected(6, seed=11)
        alg = known_size_algorithm(phi, CM.SYMMETRIC, n=6)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 60, patience=4, target=1
        )
        assert report.converged

    def test_computable_with_leader_dynamic(self):
        from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.dynamics.generators import random_dynamic_strongly_connected

        phi = modular_count_predicate(1, 3)
        inputs = [(v, i == 0) for i, v in enumerate([1, 1, 2, 1, 2])]
        dyn = random_dynamic_strongly_connected(5, seed=12)
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1, f=phi)
        report = run_until_stable(
            Execution(alg, dyn, inputs=inputs), 800, patience=8, target=1
        )
        assert report.converged

    def test_impossible_without_help(self):
        from repro.analysis.impossibility import frequency_counterexample

        phi = modular_count_predicate(1, 2, residue=1)
        cert = frequency_counterexample(phi, [1, 2])
        assert cert is not None
        assert cert["f(v)"] != cert["f(w)"]
