"""Tests for the graph builders: shape, connectivity, self-loops."""

import pytest

from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    de_bruijn_graph,
    directed_ring,
    hypercube,
    lollipop,
    path_graph,
    random_strongly_connected,
    random_symmetric_connected,
    star_graph,
    torus,
)
from repro.graphs.properties import (
    diameter,
    is_complete,
    is_strongly_connected,
    is_symmetric,
)


class TestRings:
    def test_directed_ring_shape(self):
        g = directed_ring(5)
        assert g.n == 5
        for i in range(5):
            assert g.has_edge(i, (i + 1) % 5)
            assert g.has_self_loop(i)
        assert diameter(g) == 4

    def test_bidirectional_ring_symmetric(self):
        g = bidirectional_ring(6)
        assert is_symmetric(g)
        assert diameter(g) == 3

    def test_ring_of_one(self):
        assert directed_ring(1).n == 1
        assert bidirectional_ring(1).all_have_self_loops()

    def test_ring_of_two_no_duplicate_arcs(self):
        g = bidirectional_ring(2)
        assert g.edge_multiplicity(0, 1) == 1
        assert g.edge_multiplicity(1, 0) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            directed_ring(0)
        with pytest.raises(ValueError):
            bidirectional_ring(-1)

    def test_no_self_loops_option(self):
        g = directed_ring(4, self_loops=False)
        assert not any(g.has_self_loop(v) for v in g.vertices())


class TestStandardFamilies:
    def test_complete(self):
        g = complete_graph(4)
        assert is_complete(g)
        assert diameter(g) == 1

    def test_path(self):
        g = path_graph(5)
        assert is_symmetric(g)
        assert diameter(g) == 4

    def test_star(self):
        g = star_graph(5)
        assert is_symmetric(g)
        assert diameter(g) == 2
        assert g.outdegree(0) == 5  # 4 leaves + self-loop

    def test_torus(self):
        g = torus(3, 4)
        assert g.n == 12
        assert is_symmetric(g)
        assert is_strongly_connected(g)

    def test_hypercube(self):
        g = hypercube(3)
        assert g.n == 8
        assert is_symmetric(g)
        assert diameter(g) == 3

    def test_lollipop(self):
        g = lollipop(4, 3)
        assert g.n == 7
        assert is_symmetric(g)
        assert is_strongly_connected(g)
        assert diameter(g) == 4

    def test_de_bruijn(self):
        g = de_bruijn_graph(2, 3)
        assert g.n == 8
        assert is_strongly_connected(g)

    def test_values_attached(self):
        g = bidirectional_ring(3, values=["a", "b", "c"])
        assert g.values == ("a", "b", "c")


class TestRandomFamilies:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_strongly_connected(self, seed):
        g = random_strongly_connected(8, seed=seed)
        assert is_strongly_connected(g)
        assert g.all_have_self_loops()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_symmetric(self, seed):
        g = random_symmetric_connected(8, seed=seed)
        assert is_symmetric(g)
        assert is_strongly_connected(g)

    def test_determinism(self):
        assert random_strongly_connected(6, seed=3) == random_strongly_connected(6, seed=3)
        assert random_symmetric_connected(6, seed=3) == random_symmetric_connected(6, seed=3)

    def test_different_seeds_differ(self):
        graphs = {random_strongly_connected(8, seed=s) for s in range(6)}
        assert len(graphs) > 1
