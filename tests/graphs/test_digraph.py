"""Unit tests for the directed multigraph core."""

import pytest

from repro.graphs.digraph import DiGraph, Edge


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(0)

    def test_single_vertex(self):
        g = DiGraph(1)
        assert g.n == 1
        assert g.num_edges == 0

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            DiGraph(2, [(0, 2)])

    def test_bad_edge_spec(self):
        with pytest.raises(ValueError):
            DiGraph(2, [(0,)])

    def test_values_length_checked(self):
        with pytest.raises(ValueError):
            DiGraph(2, [], values=[1])

    def test_parallel_edges_kept(self):
        g = DiGraph(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2
        assert g.edge_multiplicity(0, 1) == 2

    def test_ensure_self_loops(self):
        g = DiGraph(3, [(0, 1), (1, 1)], ensure_self_loops=True)
        assert g.all_have_self_loops()
        # The existing self-loop at 1 is not duplicated.
        assert g.edge_multiplicity(1, 1) == 1

    def test_colored_edges(self):
        g = DiGraph(2, [(0, 1, "red"), (1, 0, "blue")])
        colors = {e.color for e in g.edges}
        assert colors == {"red", "blue"}


class TestDegreesAndNeighbors:
    def test_degrees(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.outdegree(0) == 2
        assert g.indegree(2) == 2
        assert g.outdegree(2) == 0

    def test_neighbors_with_multiplicity(self):
        g = DiGraph(2, [(0, 1), (0, 1)])
        assert g.out_neighbors(0) == [1, 1]
        assert g.in_neighbors(1) == [0, 0]

    def test_self_loop_counts_in_both_degrees(self):
        g = DiGraph(1, [(0, 0)])
        assert g.outdegree(0) == 1
        assert g.indegree(0) == 1

    def test_degree_signature(self):
        g = DiGraph(2, [(0, 1)])
        assert g.degree_signature() == [(0, 1), (1, 0)]


class TestPorts:
    def test_ports_follow_out_edge_order(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 0)])
        e01, e02, _ = g.edges
        assert g.port_of(e01) == 0
        assert g.port_of(e02) == 1

    def test_with_port_colors(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 0)]).with_port_colors()
        by_target = {e.target: e.color for e in g.out_edges(0)}
        assert by_target == {1: 0, 2: 1}


class TestDerivedGraphs:
    def test_with_values(self):
        g = DiGraph(2, [(0, 1)]).with_values(["a", "b"])
        assert g.value(0) == "a"
        assert g.without_values().values is None

    def test_with_outdegree_values(self):
        g = DiGraph(2, [(0, 1), (1, 0), (0, 0)]).with_outdegree_values()
        assert g.values == (2, 1)

    def test_reverse(self):
        g = DiGraph(2, [(0, 1, "c")])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        assert r.edges[0].color == "c"

    def test_reverse_involution(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0), (0, 0)])
        assert g.reverse().reverse() == g

    def test_symmetric_closure(self):
        g = DiGraph(3, [(0, 1), (1, 2)]).symmetric_closure()
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)

    def test_simple_support_collapses_parallels(self):
        g = DiGraph(2, [(0, 1), (0, 1), (1, 0)]).simple_support()
        assert g.num_edges == 2

    def test_with_pair_values(self):
        g = DiGraph(2, [(0, 1)], values=["a", "b"]).with_pair_values([1, 2])
        assert g.values == (("a", 1), ("b", 2))


class TestMatrixAndEquality:
    def test_adjacency_matrix_counts_multiplicity(self):
        g = DiGraph(2, [(0, 1), (0, 1), (1, 1)])
        assert g.adjacency_matrix() == [[0, 2], [0, 1]]

    def test_structural_equality_ignores_edge_order(self):
        g = DiGraph(2, [(0, 1), (1, 0)])
        h = DiGraph(2, [(1, 0), (0, 1)])
        assert g == h
        assert hash(g) == hash(h)

    def test_inequality_on_values(self):
        g = DiGraph(2, [(0, 1)], values=[1, 2])
        h = DiGraph(2, [(0, 1)], values=[2, 1])
        assert g != h

    def test_edge_equality(self):
        assert Edge(0, 1, 2, None) == Edge(0, 1, 2, None)
        assert Edge(0, 1, 2, "a") != Edge(0, 1, 2, "b")
