"""Tests for valued/colored multigraph isomorphism."""

from repro.graphs.builders import bidirectional_ring, directed_ring, star_graph
from repro.graphs.digraph import DiGraph
from repro.graphs.isomorphism import are_isomorphic, find_isomorphism


class TestBasic:
    def test_identity(self):
        g = directed_ring(5)
        assert are_isomorphic(g, g)

    def test_rotation(self):
        g = directed_ring(5, values=[1, 2, 3, 4, 5], self_loops=False)
        rotated_values = [2, 3, 4, 5, 1]
        h = directed_ring(5, values=rotated_values, self_loops=False)
        # Same cyclic word up to rotation -> isomorphic.
        assert are_isomorphic(g, h)

    def test_different_sizes(self):
        assert not are_isomorphic(directed_ring(4), directed_ring(5))

    def test_different_edge_counts(self):
        assert not are_isomorphic(DiGraph(3, [(0, 1)]), DiGraph(3, [(0, 1), (1, 2)]))

    def test_orientation_matters(self):
        cw = directed_ring(4, self_loops=False)
        ccw = cw.reverse()
        # A directed 4-cycle is isomorphic to its reverse (relabel i -> -i).
        assert are_isomorphic(cw, ccw)

    def test_ring_vs_star(self):
        assert not are_isomorphic(bidirectional_ring(5), star_graph(5))


class TestValuesAndColors:
    def test_values_respected(self):
        g = directed_ring(4, values=[1, 1, 2, 2], self_loops=False)
        h = directed_ring(4, values=[1, 2, 1, 2], self_loops=False)
        assert not are_isomorphic(g, h)

    def test_colors_respected(self):
        g = DiGraph(2, [(0, 1, "a"), (1, 0, "b")])
        h = DiGraph(2, [(0, 1, "b"), (1, 0, "a")])
        assert are_isomorphic(g, h)  # swap vertices
        h2 = DiGraph(2, [(0, 1, "a"), (1, 0, "a")])
        assert not are_isomorphic(g, h2)

    def test_parallel_edge_multiplicity(self):
        g = DiGraph(2, [(0, 1), (0, 1), (1, 0)])
        h = DiGraph(2, [(0, 1), (1, 0), (1, 0)])
        assert are_isomorphic(g, h)  # swap
        h2 = DiGraph(2, [(0, 1), (1, 0)])
        assert not are_isomorphic(g, h2)


class TestMapping:
    def test_mapping_is_valid(self):
        g = directed_ring(6, values=list("abcabc"), self_loops=False)
        h = directed_ring(6, values=list("bcabca"), self_loops=False)
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        # Check values and edges are preserved under the mapping.
        for v in g.vertices():
            assert g.value(v) == h.value(mapping[v])
        for e in g.edges:
            assert h.has_edge(mapping[e.source], mapping[e.target])

    def test_none_when_impossible(self):
        assert find_isomorphism(directed_ring(4), bidirectional_ring(4)) is None


class TestRegularPairs:
    def test_cospectral_like_pair(self):
        # Two 6-vertex 2-regular digraphs: a 6-cycle vs two 3-cycles.
        six = directed_ring(6, self_loops=False)
        two_threes = DiGraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not are_isomorphic(six, two_threes)
