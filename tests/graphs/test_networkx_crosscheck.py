"""Cross-validation of the graph substrate against networkx.

The library itself uses no graph package; these tests independently
check our connectivity, diameter, and isomorphism implementations
against networkx on random instances.  Skipped when networkx is absent.
"""

import pytest

nx = pytest.importorskip("networkx")

from repro.graphs.builders import (
    de_bruijn_graph,
    random_strongly_connected,
    random_symmetric_connected,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.properties import diameter, is_strongly_connected


def to_nx(g: DiGraph) -> "nx.MultiDiGraph":
    h = nx.MultiDiGraph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from((e.source, e.target) for e in g.edges)
    return h


class TestConnectivityAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_strong_connectivity(self, seed):
        g = random_strongly_connected(9, seed=seed)
        assert is_strongly_connected(g) == nx.is_strongly_connected(to_nx(g))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_subgraphs(self, seed):
        # Drop some edges: connectivity verdicts must still agree.
        import random

        g = random_strongly_connected(8, seed=seed)
        rng = random.Random(seed)
        specs = [
            (e.source, e.target)
            for e in g.edges
            if e.source == e.target or rng.random() > 0.4
        ]
        h = DiGraph(8, specs)
        assert is_strongly_connected(h) == nx.is_strongly_connected(to_nx(h))

    @pytest.mark.parametrize("seed", range(4))
    def test_diameter(self, seed):
        g = random_symmetric_connected(8, seed=seed)
        assert diameter(g) == nx.diameter(to_nx(g).to_undirected())


class TestIsomorphismAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(4))
    def test_permuted_copies(self, seed):
        import random

        g = random_strongly_connected(7, seed=seed)
        perm = list(range(7))
        random.Random(seed).shuffle(perm)
        specs = [(perm[e.source], perm[e.target]) for e in g.edges]
        h = DiGraph(7, specs)
        ours = are_isomorphic(g.without_values(), h)
        theirs = nx.is_isomorphic(to_nx(g), to_nx(h))
        assert ours == theirs is True

    @pytest.mark.parametrize("seeds", [(0, 1), (2, 3), (4, 5)])
    def test_non_isomorphic_pairs(self, seeds):
        a = random_strongly_connected(7, seed=seeds[0])
        b = random_strongly_connected(7, seed=seeds[1])
        ours = are_isomorphic(a.without_values(), b.without_values())
        theirs = nx.is_isomorphic(to_nx(a), to_nx(b))
        assert ours == theirs

    def test_de_bruijn_agreement(self):
        g = de_bruijn_graph(2, 3)
        assert are_isomorphic(g, g)
        assert nx.is_isomorphic(to_nx(g), to_nx(g))
