"""Tests for the wheel and complete-bipartite builders."""

import pytest

from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import complete_bipartite, wheel_graph
from repro.graphs.properties import diameter, is_strongly_connected, is_symmetric


class TestWheel:
    def test_shape(self):
        g = wheel_graph(6)
        assert g.n == 6
        assert is_symmetric(g)
        assert diameter(g) == 2
        assert g.outdegree(0) == 6  # 5 rim + self

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            wheel_graph(3)

    def test_two_fibre_classes(self):
        mb = minimum_base(wheel_graph(7))
        assert mb.base.n == 2
        assert sorted(mb.fibre_sizes) == [1, 6]


class TestCompleteBipartite:
    def test_shape(self):
        g = complete_bipartite(2, 3)
        assert g.n == 5
        assert is_symmetric(g)
        assert is_strongly_connected(g)
        assert not g.has_edge(0, 1)  # no intra-side edges
        assert g.has_edge(0, 2)

    def test_fibres_are_the_sides(self):
        mb = minimum_base(complete_bipartite(2, 5))
        assert mb.base.n == 2
        assert sorted(mb.fibre_sizes) == [2, 5]

    def test_balanced_collapses_to_point(self):
        # K_{m,m} is vertex-transitive-ish in-structure: both sides look
        # identical, so the unvalued base is a single vertex.
        mb = minimum_base(complete_bipartite(3, 3))
        assert mb.base.n == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            complete_bipartite(0, 3)

    def test_frequency_pipeline_on_bipartite(self):
        # The built-in frequency witness: sides of sizes 2 and 4 with two
        # values — the pipeline recovers frequencies (1/3, 2/3) exactly.
        from repro.algorithms.frequency_static import StaticFunctionAlgorithm
        from repro.core.convergence import run_until_stable
        from repro.core.execution import Execution
        from repro.core.models import CommunicationModel as CM
        from repro.functions.library import AVERAGE

        g = complete_bipartite(2, 4)
        inputs = [9, 9, 3, 3, 3, 3]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 40, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged
