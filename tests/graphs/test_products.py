"""Tests for graph composition — footnote 3 of §2.1."""

import pytest

from repro.graphs.builders import complete_graph, directed_ring
from repro.graphs.digraph import DiGraph
from repro.graphs.products import graph_product, iterated_product, reachability_closure
from repro.graphs.properties import is_complete


class TestProduct:
    def test_two_hops(self):
        # 0 -> 1 in G1, 1 -> 2 in G2 gives 0 -> 2 in the product.
        g1 = DiGraph(3, [(0, 1)])
        g2 = DiGraph(3, [(1, 2)])
        p = graph_product(g1, g2)
        assert p.has_edge(0, 2)
        assert p.num_edges == 1

    def test_self_loops_keep_edges_alive(self):
        # With self-loops everywhere, an edge of G1 survives composition.
        g1 = directed_ring(4)
        quiet = DiGraph(4, [], ensure_self_loops=True)
        p = graph_product(g1, quiet)
        for e in g1.edges:
            assert p.has_edge(e.source, e.target)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            graph_product(DiGraph(2), DiGraph(3))

    def test_ring_composition_reaches_distance_two(self):
        g = directed_ring(5)
        p = graph_product(g, g)
        assert p.has_edge(0, 2)
        assert p.has_edge(0, 1)  # via self-loop
        assert not p.has_edge(0, 3)

    def test_complete_absorbs(self):
        g = complete_graph(4)
        assert is_complete(graph_product(g, directed_ring(4)))


class TestIteratedProduct:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iterated_product([])

    def test_directed_ring_completes_in_n_minus_one(self):
        g = directed_ring(5)
        assert not is_complete(iterated_product([g] * 3))
        assert is_complete(iterated_product([g] * 4))

    def test_reachability_closure_monotone(self):
        g = directed_ring(6)
        prefix = reachability_closure([g] * 5)
        counts = [p.num_edges for p in prefix]
        assert counts == sorted(counts)
        assert is_complete(prefix[-1])
