"""Tests for structural predicates, distances, and SCCs."""

import pytest

from repro.graphs.builders import bidirectional_ring, complete_graph, directed_ring
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import (
    diameter,
    distances,
    indegree_sequence,
    is_complete,
    is_regular,
    is_strongly_connected,
    is_symmetric,
    outdegree_sequence,
    strongly_connected_components,
)


class TestConnectivity:
    def test_single_vertex_strongly_connected(self):
        assert is_strongly_connected(DiGraph(1))

    def test_directed_path_not_strong(self):
        assert not is_strongly_connected(DiGraph(3, [(0, 1), (1, 2)]))

    def test_cycle_strong(self):
        assert is_strongly_connected(directed_ring(5))

    def test_disconnected(self):
        assert not is_strongly_connected(DiGraph(4, [(0, 1), (1, 0), (2, 3), (3, 2)]))

    def test_one_way_bridge(self):
        # Two cycles joined by a single directed edge: reachable one way only.
        g = DiGraph(4, [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2)])
        assert not is_strongly_connected(g)


class TestDiameter:
    def test_complete_diameter_one(self):
        assert diameter(complete_graph(5)) == 1

    def test_directed_ring_diameter(self):
        assert diameter(directed_ring(7)) == 6

    def test_bidirectional_ring_diameter(self):
        assert diameter(bidirectional_ring(7)) == 3

    def test_diameter_requires_strong_connectivity(self):
        with pytest.raises(ValueError):
            diameter(DiGraph(2, [(0, 1)]))

    def test_distances(self):
        g = directed_ring(4)
        assert distances(g, 0) == [0, 1, 2, 3]


class TestShape:
    def test_symmetry_on_support(self):
        g = DiGraph(2, [(0, 1), (0, 1), (1, 0)])  # multiplicities differ
        assert is_symmetric(g)

    def test_not_symmetric(self):
        assert not is_symmetric(DiGraph(2, [(0, 1)]))

    def test_is_complete_needs_self_loops(self):
        g = DiGraph(2, [(0, 1), (1, 0)])
        assert not is_complete(g)
        assert is_complete(complete_graph(2))

    def test_degree_sequences(self):
        g = DiGraph(3, [(0, 1), (0, 2), (2, 1)])
        assert outdegree_sequence(g) == (2, 0, 1)
        assert indegree_sequence(g) == (0, 2, 1)

    def test_regular(self):
        assert is_regular(directed_ring(5))
        assert not is_regular(DiGraph(2, [(0, 1)]))


class TestSCC:
    def test_single_component(self):
        comps = strongly_connected_components(directed_ring(4))
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2, 3]

    def test_chain_of_singletons(self):
        comps = strongly_connected_components(DiGraph(3, [(0, 1), (1, 2)]))
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_two_cycles(self):
        g = DiGraph(5, [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (0, 2)])
        comps = sorted(strongly_connected_components(g), key=len)
        assert [len(c) for c in comps] == [2, 3]
        assert sorted(comps[1]) == [2, 3, 4]

    def test_reverse_topological_order(self):
        # Tarjan emits components in reverse topological order: the sink
        # component (no outgoing edges to others) comes first.
        g = DiGraph(4, [(0, 1), (1, 0), (0, 2), (2, 3), (3, 2)])
        comps = strongly_connected_components(g)
        assert sorted(comps[0]) == [2, 3]
