"""Tests for hash-consed in-views (Boldi–Vigna universal structures)."""

from repro.graphs.builders import bidirectional_ring, directed_ring, star_graph
from repro.graphs.views import (
    ViewBuilder,
    all_views,
    dag_size,
    nodes_within_levels,
    tree_size,
    view_of,
)


class TestInterning:
    def test_equal_views_are_identical(self):
        b = ViewBuilder()
        leaf1 = b.leaf("x")
        leaf2 = b.leaf("x")
        assert leaf1 is leaf2

    def test_child_order_is_canonical(self):
        b = ViewBuilder()
        x, y = b.leaf("x"), b.leaf("y")
        n1 = b.node("r", [(None, x), (None, y)])
        n2 = b.node("r", [(None, y), (None, x)])
        assert n1 is n2

    def test_multiplicity_matters(self):
        b = ViewBuilder()
        x = b.leaf("x")
        once = b.node("r", [(None, x)])
        twice = b.node("r", [(None, x), (None, x)])
        assert once is not twice

    def test_colors_distinguish(self):
        b = ViewBuilder()
        x = b.leaf("x")
        assert b.node("r", [(0, x)]) is not b.node("r", [(1, x)])

    def test_depth(self):
        b = ViewBuilder()
        leaf = b.leaf("x")
        assert leaf.depth == 0
        assert b.node("r", [(None, leaf)]).depth == 1


class TestTruncation:
    def test_truncate_to_leaf(self):
        b = ViewBuilder()
        deep = b.node("r", [(None, b.node("m", [(None, b.leaf("x"))]))])
        cut = b.truncate(deep, 0)
        assert cut is b.leaf("r")

    def test_truncate_noop_when_shallow(self):
        b = ViewBuilder()
        v = b.node("r", [(None, b.leaf("x"))])
        assert b.truncate(v, 5) is v

    def test_truncate_depth(self):
        b = ViewBuilder()
        v = b.leaf("x")
        for label in "abcd":
            v = b.node(label, [(None, v)])
        assert b.truncate(v, 2).depth == 2


class TestGraphViews:
    def test_anonymous_symmetric_vertices_share_views(self, valued_ring6):
        views = all_views(valued_ring6, depth=10)
        # Alternating values on an even ring: exactly two view classes.
        assert len({v.uid for v in views}) == 2
        assert views[0] is views[2] is views[4]
        assert views[1] is views[3] is views[5]

    def test_view_of_matches_all_views(self):
        g = star_graph(4, values=["h", "l", "l", "l"])
        b = ViewBuilder()
        singles = [view_of(g, v, 6, builder=b) for v in g.vertices()]
        batch = all_views(g, 6, builder=b)
        assert all(s is t for s, t in zip(singles, batch))

    def test_leaves_share_view_hub_does_not(self):
        g = star_graph(5, values=["h", "l", "l", "l", "l"])
        views = all_views(g, depth=8)
        assert len({views[i].uid for i in range(1, 5)}) == 1
        assert views[0] is not views[1]

    def test_port_views_distinguish_directions(self):
        # On an unvalued directed ring all views agree; with ports the
        # labels are still rotation-invariant so they agree too.
        g = directed_ring(4)
        plain = all_views(g, 6)
        assert len({v.uid for v in plain}) == 1

    def test_fanin_matches_indegree(self):
        g = bidirectional_ring(5)
        v0 = view_of(g, 0, 3)
        assert len(v0.children) == g.indegree(0)


class TestSizes:
    def test_dag_vs_tree_size(self):
        g = bidirectional_ring(6)
        v = view_of(g, 0, 10)
        assert dag_size(v) <= 6 * 11  # at most n distinct nodes per level
        assert tree_size(v) > dag_size(v)  # exponential unfolding

    def test_tree_size_exact_small(self):
        b = ViewBuilder()
        x = b.leaf("x")
        n = b.node("r", [(None, x), (None, x)])
        assert tree_size(n) == 3
        assert dag_size(n) == 2


class TestLevelCollection:
    def test_levels_and_dedup(self):
        g = bidirectional_ring(4, values=[0, 1, 0, 1])
        v = view_of(g, 0, 8)
        pairs = nodes_within_levels(v, 2)
        assert pairs[0] == (0, v)
        levels = [lv for lv, _ in pairs]
        assert levels == sorted(levels)
        uids = [node.uid for _, node in pairs]
        assert len(uids) == len(set(uids))
