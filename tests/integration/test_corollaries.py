"""Integration: Corollaries 4.2–4.4 and 5.3–5.5 end to end."""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.multiset_static import known_size_algorithm, leader_algorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge
from repro.dynamics.generators import random_dynamic_strongly_connected
from repro.functions.library import AVERAGE, SIZE, SUM, multiplicity_of
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected

INPUTS = [3, 1, 1, 4, 1, 4]


class TestCorollary42:
    """A bound on n changes nothing in the static enriched models."""

    def test_bound_same_as_none(self):
        g = random_strongly_connected(6, seed=0)
        for knowledge in (Knowledge.NONE, Knowledge.BOUND_N):
            alg = StaticFunctionAlgorithm(
                AVERAGE, CM.OUTDEGREE_AWARE, knowledge=knowledge, n=10
            )
            report = run_until_stable(
                Execution(alg, g, inputs=INPUTS), 60, patience=4, target=AVERAGE(INPUTS)
            )
            assert report.converged


class TestCorollary43:
    """Known n upgrades frequency to multiset (static)."""

    @pytest.mark.parametrize("model", [CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE])
    def test_multiset_functions(self, model):
        build = random_symmetric_connected if model is CM.SYMMETRIC else random_strongly_connected
        g = build(6, seed=1)
        for f in (SUM, SIZE, multiplicity_of(1)):
            alg = known_size_algorithm(f, model, n=6)
            report = run_until_stable(
                Execution(alg, g, inputs=INPUTS), 60, patience=4, target=f(INPUTS)
            )
            assert report.converged


class TestCorollary44:
    """A leader upgrades frequency to multiset (static), eq. (5)."""

    def test_leader_count_scaling(self):
        g = random_symmetric_connected(6, seed=2)
        for ell in (1, 2, 3):
            linputs = [(v, i < ell) for i, v in enumerate(INPUTS)]
            alg = leader_algorithm(SUM, CM.SYMMETRIC, leader_count=ell)
            report = run_until_stable(
                Execution(alg, g, inputs=linputs), 60, patience=4, target=SUM(INPUTS)
            )
            assert report.converged


class TestCorollary53:
    """With a bound N, dynamic frequencies become exact in finite time."""

    @pytest.mark.parametrize("n_bound", [6, 8, 12])
    def test_exact_for_any_valid_bound(self, n_bound):
        dyn = random_dynamic_strongly_connected(6, seed=3)
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=n_bound, f=AVERAGE)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 800, patience=8, target=AVERAGE(INPUTS)
        )
        assert report.converged

    def test_larger_bound_takes_longer(self):
        # Stabilization is O(n² D log N): a much larger bound stabilizes
        # no earlier (needs a finer estimate before rounding locks in).
        rounds = {}
        for n_bound in (7, 200):
            dyn = random_dynamic_strongly_connected(6, seed=4)
            alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=n_bound)
            report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 2000, patience=8)
            assert report.converged
            rounds[n_bound] = report.stabilization_round
        assert rounds[200] >= rounds[7]


class TestCorollary54AndLeaders:
    """Known n (or leaders) upgrades to multiset in dynamic networks."""

    def test_sum_with_known_n(self):
        dyn = random_dynamic_strongly_connected(6, seed=5)
        alg = PushSumFrequencyAlgorithm(mode="multiset", n=6, f=SUM)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 800, patience=8, target=SUM(INPUTS)
        )
        assert report.converged

    def test_size_with_leader(self):
        dyn = random_dynamic_strongly_connected(6, seed=6)
        linputs = [(v, i == 0) for i, v in enumerate(INPUTS)]
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1, f=SIZE)
        report = run_until_stable(
            Execution(alg, dyn, inputs=linputs), 800, patience=8, target=6
        )
        assert report.converged


class TestCorollary55:
    """Without any bound, continuous-in-frequency functions converge."""

    def test_average_asymptotically(self):
        dyn = random_dynamic_strongly_connected(6, seed=7)

        def weighted_average(freqs):
            return sum(v * p for v, p in freqs.items())

        alg = PushSumFrequencyAlgorithm(mode="frequencies", f=weighted_average)
        ex = Execution(alg, dyn, inputs=INPUTS)
        report = run_until_asymptotic(
            ex,
            800,
            tolerance=1e-7,
            target=float(AVERAGE(INPUTS)),
            output_filter=lambda o: o is not None,
        )
        assert report.converged
