"""The fine structure of Corollary 5.5: continuity is exactly the divide.

Without any knowledge of the network size, Push-Sum's estimates are only
asymptotic, so a frequency-based function is computable iff it is
continuous in frequency.  The sharpest witnesses are the threshold
predicates Φ^ω_r of §5.4: continuous (hence computable) iff ``r`` is
irrational.  These tests realize both sides on actual executions:

* away from the threshold (or with an irrational threshold, which exact
  rational frequencies can never hit) the predicate's value stabilizes
  quickly and unanimously;
* probing a *rational* threshold exactly at the input frequency, the
  estimates hover around ``r`` and different agents sit on different
  sides for an extended stretch — the discontinuity measurably delays
  agreement, and which side they eventually settle on is an artifact of
  floating-point approach direction, not a computed answer.
"""

import math

from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_strongly_connected


def predicate_trace(inputs, threshold, rounds=400, seed=37):
    """Per-round unanimous predicate value (None = agents disagree)."""

    def phi(freqs):
        return 1 if freqs.get(1, 0.0) >= threshold else 0

    alg = PushSumFrequencyAlgorithm(mode="frequencies", f=phi)
    dyn = random_dynamic_strongly_connected(len(inputs), seed=seed)
    ex = Execution(alg, dyn, inputs=inputs)
    trace = []
    for _ in range(rounds):
        ex.step()
        outs = ex.outputs()
        trace.append(outs[0] if all(o == outs[0] for o in outs) else None)
    return trace


def disagreement_rounds(trace):
    return sum(1 for v in trace if v is None)


class TestIrrationalThresholdComputable:
    def test_stabilizes_below(self):
        # ν(1) = 1/2 < 1/√2 ≈ 0.707: predicate settles on 0.
        trace = predicate_trace([1, 1, 2, 2], 1 / math.sqrt(2))
        assert all(v == 0 for v in trace[-100:])

    def test_stabilizes_above(self):
        # ν(1) = 3/4 > 1/√2.
        trace = predicate_trace([1, 1, 1, 2], 1 / math.sqrt(2))
        assert all(v == 1 for v in trace[-100:])

    def test_agreement_is_fast(self):
        trace = predicate_trace([1, 1, 2, 2], 1 / math.sqrt(2))
        assert disagreement_rounds(trace) <= 10


class TestRationalThresholdAtBoundary:
    def test_prolonged_disagreement_at_the_boundary(self):
        # ν(1) = 1/2 probed with r = 1/2 exactly: estimates approach the
        # threshold from both sides across agents, so unanimity takes an
        # order of magnitude longer than in the clear case — the
        # discontinuity of Φ at r, made visible.
        boundary = predicate_trace([1, 1, 2, 2], 0.5)
        clear = predicate_trace([1, 1, 2, 2], 1 / math.sqrt(2))
        assert disagreement_rounds(boundary) >= 5 * max(1, disagreement_rounds(clear))

    def test_nearby_rational_inputs_separate(self):
        # The same predicate is perfectly fine *off* the boundary: inputs
        # with ν(1) = 2/5 vs 3/5 both settle quickly — Φ^1_{1/2} fails
        # asymptotically only where its discontinuity sits.
        low = predicate_trace([1, 1, 2, 2, 2], 0.5)
        high = predicate_trace([1, 1, 1, 2, 2], 0.5)
        assert all(v == 0 for v in low[-100:])
        assert all(v == 1 for v in high[-100:])
