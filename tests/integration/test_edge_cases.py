"""Edge cases across the stack: singletons, two agents, uniform inputs."""

from fractions import Fraction

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.multiset_static import known_size_algorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.functions.library import AVERAGE, SUM
from repro.graphs.builders import bidirectional_ring, complete_graph
from repro.graphs.digraph import DiGraph


SINGLETON = DiGraph(1, [(0, 0)])


class TestSingleton:
    def test_static_pipeline(self):
        for model in (CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE):
            alg = StaticFunctionAlgorithm(AVERAGE, model)
            report = run_until_stable(
                Execution(alg, SINGLETON, inputs=[7]), 20, patience=3, target=7
            )
            assert report.converged

    def test_push_sum_fixed_point(self):
        ex = Execution(PushSumAlgorithm(), SINGLETON, inputs=[7.0])
        ex.run(5)
        assert ex.outputs() == [7.0]

    def test_gossip(self):
        ex = Execution(GossipAlgorithm(max), SINGLETON, inputs=[7])
        ex.run(2)
        assert ex.outputs() == [7]

    def test_history_tree(self):
        report = run_until_stable(
            Execution(HistoryTreeAlgorithm(), SINGLETON, inputs=[7]), 10, patience=3
        )
        assert report.converged
        assert report.value == {7: Fraction(1)}

    def test_known_size_sum(self):
        alg = known_size_algorithm(SUM, CM.SYMMETRIC, n=1)
        report = run_until_stable(
            Execution(alg, SINGLETON, inputs=[7]), 20, patience=3, target=7
        )
        assert report.converged


class TestTwoAgents:
    def test_static_average(self):
        g = bidirectional_ring(2)
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=[1, 3]), 30, patience=3, target=Fraction(2)
        )
        assert report.converged

    def test_push_sum_frequencies(self):
        g = bidirectional_ring(2)
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=3)
        report = run_until_stable(Execution(alg, g, inputs=["a", "b"]), 400, patience=8)
        assert report.converged
        assert report.value["a"] == Fraction(1, 2)


class TestUniformInputs:
    def test_uniform_values_collapse_to_point_base(self):
        # All inputs equal on a vertex-transitive graph: the minimum base
        # is a single vertex, frequencies are {v: 1}, everything works.
        g = complete_graph(5)
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=[4] * 5), 30, patience=3, target=4
        )
        assert report.converged

    def test_uniform_push_sum_is_instant(self):
        g = complete_graph(5)
        ex = Execution(PushSumAlgorithm(), g, inputs=[4.0] * 5)
        ex.step()
        assert all(abs(o - 4.0) < 1e-12 for o in ex.outputs())

    def test_negative_and_zero_values(self):
        g = bidirectional_ring(4)
        inputs = [-3, 0, 0, -3]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 40, patience=3, target=AVERAGE(inputs)
        )
        assert report.converged

    def test_non_numeric_values_with_set_functions(self):
        g = bidirectional_ring(4)
        ex = Execution(GossipAlgorithm(), g, inputs=["x", "y", "x", "z"])
        ex.run(4)
        assert ex.unanimous_output() == frozenset({"x", "y", "z"})


class TestFloatInputsInStaticPipeline:
    def test_float_labels_work(self):
        # View labels only need hashability; floats are fine end to end.
        g = bidirectional_ring(4)
        inputs = [0.5, 1.5, 0.5, 1.5]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(Execution(alg, g, inputs=inputs), 40, patience=3)
        assert report.converged
        assert float(report.value) == 1.0
