"""The wider function battery pushed through every positive cell.

Tables 1 and 2 are characterizations — *every* function of the right
class is computable, not just the three probes.  These tests run the
full extended library (min/max/count-distinct, average/variance/mode/
median, sum/size) through each positive regime, checking that class
membership alone decides computability.
"""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.multiset_static import known_size_algorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge
from repro.functions.classes import FunctionClass
from repro.functions.library import EXTENDED_LIBRARY
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.dynamics.generators import random_dynamic_strongly_connected, random_dynamic_symmetric

INPUTS = [3, 1, 1, 4, 1, 4]

FREQ_OR_BELOW = [
    (fn, k) for (fn, k) in EXTENDED_LIBRARY if k <= FunctionClass.FREQUENCY_BASED
]


class TestStaticFrequencyRegime:
    @pytest.mark.parametrize("fn,klass", FREQ_OR_BELOW, ids=lambda x: getattr(x, "name", x))
    def test_every_frequency_based_function_computable(self, fn, klass):
        g = random_strongly_connected(6, seed=14)
        alg = StaticFunctionAlgorithm(fn, CM.OUTDEGREE_AWARE)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=fn(INPUTS)
        )
        assert report.converged, fn.name


class TestStaticMultisetRegime:
    @pytest.mark.parametrize(
        "fn,klass", EXTENDED_LIBRARY, ids=lambda x: getattr(x, "name", x)
    )
    def test_everything_computable_with_known_n(self, fn, klass):
        g = random_symmetric_connected(6, seed=15)
        alg = known_size_algorithm(fn, CM.SYMMETRIC, n=6)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=fn(INPUTS)
        )
        assert report.converged, fn.name


@pytest.mark.slow
class TestDynamicRegimes:
    @pytest.mark.parametrize("fn,klass", FREQ_OR_BELOW, ids=lambda x: getattr(x, "name", x))
    def test_dynamic_exact_with_bound(self, fn, klass):
        dyn = random_dynamic_strongly_connected(6, seed=16)
        alg = PushSumFrequencyAlgorithm(mode="exact", n_bound=8, f=fn)
        report = run_until_stable(
            Execution(alg, dyn, inputs=INPUTS), 800, patience=8, target=fn(INPUTS)
        )
        assert report.converged, fn.name

    @pytest.mark.parametrize("fn,klass", FREQ_OR_BELOW, ids=lambda x: getattr(x, "name", x))
    def test_dynamic_symmetric_no_knowledge(self, fn, klass):
        dyn = random_dynamic_symmetric(5, seed=17)
        alg = HistoryTreeAlgorithm(f=fn)
        inputs = INPUTS[:5]
        report = run_until_stable(
            Execution(alg, dyn, inputs=inputs), 24, patience=4, target=fn(inputs)
        )
        assert report.converged, fn.name
