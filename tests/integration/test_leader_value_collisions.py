"""Leaders sharing a value with non-leaders: the census must still add up.

A leader's *input value* can coincide with followers' values; the
(value, is_leader) pair keeps the classes apart, but the reconstructed
census must merge them back per value.  Regression territory — the
history-tree leader branch originally overwrote instead of accumulating.
"""

from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.multiset_static import leader_algorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.core.network_class import Knowledge
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    random_dynamic_symmetric,
)
from repro.functions.library import SUM
from repro.graphs.builders import random_symmetric_connected

# The leader also holds value 1, like three followers.
VALUES = [1, 1, 1, 2, 2, 1]
INPUTS = [(v, i == 5) for i, v in enumerate(VALUES)]  # agent 5 leads, value 1


class TestStaticPipeline:
    def test_sum_with_shared_leader_value(self):
        g = random_symmetric_connected(6, seed=31)
        alg = leader_algorithm(SUM, CM.SYMMETRIC, leader_count=1)
        report = run_until_stable(
            Execution(alg, g, inputs=INPUTS), 60, patience=4, target=SUM(VALUES)
        )
        assert report.converged


class TestHistoryTree:
    def test_multiset_accumulates_shared_values(self):
        dyn = random_dynamic_symmetric(6, seed=32)
        alg = HistoryTreeAlgorithm(knowledge=Knowledge.LEADER, leader_count=1)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 28, patience=4)
        assert report.converged
        assert report.value == {1: 4, 2: 2}


class TestLeaderPushSum:
    def test_multiset_with_shared_value(self):
        dyn = random_dynamic_strongly_connected(6, seed=33)
        alg = PushSumFrequencyAlgorithm(mode="multiset", leader_count=1)
        report = run_until_stable(Execution(alg, dyn, inputs=INPUTS), 800, patience=8)
        assert report.converged
        assert report.value == {1: 4, 2: 2}
