"""Integration: self-stabilization, asynchronous starts, failure injection.

The paper distinguishes three robustness notions (§2.2): tolerance to
asynchronous starts, self-stabilization (arbitrary initialization), and
neither.  These tests pin each algorithm to its claimed position.
"""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.metropolis import MetropolisAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.starts import AsynchronousStartGraph
from repro.functions.library import AVERAGE
from repro.graphs.builders import random_symmetric_connected

INPUTS = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
TRUE_AVG = sum(INPUTS) / 6


class TestSelfStabilization:
    def test_static_pipeline_recovers_from_corrupted_views(self):
        # The finite-state variant (§3.2) is self-stabilizing: plant
        # garbage views; the depth bound pushes them out of memory within
        # max_view_depth rounds and the extraction recovers.
        g = random_symmetric_connected(6, seed=1)
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC, max_view_depth=24)
        inputs = [3, 1, 1, 4, 1, 4]
        garbage = alg.builder.node(999, [(None, alg.builder.leaf(998))])
        states = [(v, garbage) for v in inputs]
        ex = Execution(alg, g, initial_states=states)
        from fractions import Fraction

        report = run_until_stable(ex, 80, patience=4, target=Fraction(7, 3))
        assert report.converged

    def test_unbounded_views_are_not_self_stabilizing(self):
        # Without the depth bound, planted garbage inflates the view depth
        # and the depth-based cutoff keeps grazing it: the classic reason
        # the paper needs the finite-state variant for self-stabilization.
        g = random_symmetric_connected(6, seed=1)
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        inputs = [3, 1, 1, 4, 1, 4]
        garbage = alg.builder.node(999, [(None, alg.builder.leaf(998))])
        states = [(v, garbage) for v in inputs]
        ex = Execution(alg, g, initial_states=states)
        report = run_until_stable(ex, 40, patience=4)
        assert not report.converged  # alternates value/None forever

    def test_push_sum_is_not_self_stabilizing(self):
        # Corrupting y destroys the conserved quantity: Push-Sum converges
        # to the *corrupted* quot-sum, not the true one.
        g = random_symmetric_connected(6, seed=2)
        alg = PushSumAlgorithm()
        states = [(v, 1.0) for v in INPUTS]
        states[0] = (states[0][0] + 60.0, 1.0)  # inject 60 units of mass
        ex = Execution(alg, StaticAsDynamic(g), initial_states=states)
        report = run_until_asymptotic(ex, 600, tolerance=1e-8, target=TRUE_AVG + 10.0)
        assert report.converged  # converged, but to the corrupted value


class TestAsynchronousStarts:
    @pytest.mark.parametrize("starts", [[1, 1, 1, 1, 1, 1], [1, 4, 2, 6, 3, 1], [5, 5, 5, 5, 5, 1]])
    def test_push_sum_tolerates_starts(self, starts):
        base = StaticAsDynamic(random_symmetric_connected(6, seed=3))
        dyn = AsynchronousStartGraph(base, starts)
        ex = Execution(PushSumAlgorithm(), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 800, tolerance=1e-8, target=TRUE_AVG)
        assert report.converged

    def test_metropolis_tolerates_starts(self):
        base = StaticAsDynamic(random_symmetric_connected(6, seed=4))
        dyn = AsynchronousStartGraph(base, [2, 1, 4, 1, 3, 2])
        ex = Execution(MetropolisAlgorithm(), dyn, inputs=INPUTS)
        report = run_until_asymptotic(ex, 3000, tolerance=1e-7, target=TRUE_AVG)
        assert report.converged

    def test_static_pipeline_tolerates_starts(self):
        # Self-stabilizing ⇒ tolerates asynchronous starts (§2.2); the
        # start-up transient lives in the view like initialization garbage,
        # so the finite-state variant flushes it.
        base = StaticAsDynamic(random_symmetric_connected(6, seed=5))
        dyn = AsynchronousStartGraph(base, [1, 3, 2, 4, 2, 1])
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC, max_view_depth=24)
        inputs = [3, 1, 1, 4, 1, 4]
        from fractions import Fraction

        report = run_until_stable(
            Execution(alg, dyn, inputs=inputs), 120, patience=4, target=Fraction(7, 3)
        )
        assert report.converged
