"""Scaling smoke tests: the pipelines at the largest sizes we run in CI."""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.convergence import run_until_asymptotic, run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.functions.library import AVERAGE
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.dynamics.generators import random_dynamic_strongly_connected, random_dynamic_symmetric


@pytest.mark.slow
class TestStaticScaling:
    def test_static_pipeline_n16(self):
        g = random_strongly_connected(16, seed=20)
        inputs = [i % 4 for i in range(16)]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.OUTDEGREE_AWARE)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 120, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    def test_static_pipeline_symmetric_n20(self):
        g = random_symmetric_connected(20, seed=21)
        inputs = [i % 3 for i in range(20)]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 140, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged


@pytest.mark.slow
class TestDynamicScaling:
    def test_push_sum_n32(self):
        dyn = random_dynamic_strongly_connected(32, seed=22)
        inputs = [float(i % 8) for i in range(32)]
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        report = run_until_asymptotic(
            ex, 2000, tolerance=1e-8, target=sum(inputs) / 32
        )
        assert report.converged

    def test_history_tree_n7(self):
        dyn = random_dynamic_symmetric(7, seed=23)
        inputs = [i % 3 for i in range(7)]
        alg = HistoryTreeAlgorithm(f=AVERAGE)
        report = run_until_stable(
            Execution(alg, dyn, inputs=inputs), 28, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged
