"""Integration: Theorem 4.1 — frequency-based ⇔ computable (static).

Both directions, end to end: the positive pipeline computes frequency-
based functions exactly in all three enriched models on assorted graph
families, and the fibration collapse defeats any algorithm on non-
frequency-based targets.
"""

import pytest

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.impossibility import demonstrate_collapse, frequency_counterexample
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.functions.library import AVERAGE, SUM, frequency_of, threshold_predicate
from repro.graphs.builders import (
    hypercube,
    lollipop,
    random_strongly_connected,
    random_symmetric_connected,
    torus,
)


class TestPositiveDirection:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("model", [CM.OUTDEGREE_AWARE, CM.SYMMETRIC, CM.OUTPUT_PORT_AWARE])
    def test_average_on_random_graphs(self, model, seed):
        n = 6
        build = random_symmetric_connected if model is CM.SYMMETRIC else random_strongly_connected
        g = build(n, seed=seed)
        inputs = [(seed + i) % 3 for i in range(n)]
        alg = StaticFunctionAlgorithm(AVERAGE, model)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 80, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    @pytest.mark.parametrize(
        "graph,inputs",
        [
            (torus(2, 4), [1, 2, 1, 2, 1, 2, 1, 2]),
            (hypercube(3), [1, 1, 1, 1, 2, 2, 2, 2]),
            (lollipop(4, 3), [5, 5, 5, 5, 1, 1, 1]),
        ],
    )
    def test_structured_families_symmetric(self, graph, inputs):
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, graph, inputs=inputs), 100, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    def test_threshold_predicate_exact(self):
        g = random_symmetric_connected(6, seed=9)
        inputs = [1, 1, 1, 1, 2, 2]
        phi = threshold_predicate(1, 0.6)
        alg = StaticFunctionAlgorithm(phi, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 60, patience=4, target=phi(inputs)
        )
        assert report.converged

    def test_frequency_of_each_value(self):
        g = random_strongly_connected(6, seed=10)
        inputs = [3, 1, 1, 4, 1, 4]
        for value in (1, 3, 4, 99):
            f = frequency_of(value)
            alg = StaticFunctionAlgorithm(f, CM.OUTDEGREE_AWARE)
            report = run_until_stable(
                Execution(alg, g, inputs=inputs), 60, patience=4, target=f(inputs)
            )
            assert report.converged


class TestNegativeDirection:
    def test_sum_impossible_in_all_models(self):
        cert = frequency_counterexample(SUM, [1, 2])
        assert cert is not None
        for model in (CM.SIMPLE_BROADCAST, CM.OUTDEGREE_AWARE, CM.OUTPUT_PORT_AWARE):
            outcome = demonstrate_collapse(
                PushSumAlgorithm,
                n=cert["n"] * 2,
                m=cert["m"] * 2,
                base_values=[1.0, 2.0],
                rounds=100,
                model=model,
            )
            assert outcome.lifted
            # Outputs coincide across the two rings although the sums differ.
            assert outcome.outputs_big[0] == pytest.approx(outcome.outputs_other[0])

    def test_size_impossible(self):
        cert = frequency_counterexample(lambda v: len(v), [1, 2])
        assert cert is not None

    def test_rational_threshold_at_boundary_is_fragile(self):
        # Φ^1_{1/2} takes different values on frequency-*close* inputs —
        # the paper's example of a frequency-based but discontinuous
        # function (computable exactly in static networks nonetheless).
        phi = threshold_predicate(1, 0.5)
        assert phi([1, 2]) == 1
        assert phi([1, 2, 2]) == 0
