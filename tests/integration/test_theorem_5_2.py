"""Integration: Theorem 5.2 — Push-Sum convergence and its rate bound."""

import math

import pytest

from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.execution import Execution
from repro.core.metrics import spread
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    sparse_pulsed_dynamic,
)
from repro.functions.library import quot_sum


def rounds_to_epsilon(execution, target, epsilon, max_rounds):
    for t in range(1, max_rounds + 1):
        execution.step()
        outs = execution.outputs()
        if max(abs(o - target) for o in outs) <= epsilon:
            return t
    return None


class TestConvergenceRate:
    def test_within_paper_bound(self):
        # Theorem 5.2: within ε of the quot-sum in O(n² D log(1/ε)) rounds.
        n = 6
        dyn = random_dynamic_strongly_connected(n, seed=42)
        d = dynamic_diameter(dyn, horizon=6)
        inputs = [float(i) for i in range(n)]
        target = sum(inputs) / n
        ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
        eps = 1e-6
        bound = max(1, round(n * n * d * math.log(1 / eps)))
        t = rounds_to_epsilon(ex, target, eps, bound)
        assert t is not None
        assert t <= bound

    def test_log_epsilon_scaling(self):
        # Rounds-to-ε grows roughly linearly in log(1/ε) at fixed (n, D).
        n = 6
        inputs = [float(i) for i in range(n)]
        target = sum(inputs) / n
        times = []
        for eps in (1e-2, 1e-4, 1e-8):
            dyn = random_dynamic_strongly_connected(n, seed=7)
            ex = Execution(PushSumAlgorithm(), dyn, inputs=inputs)
            times.append(rounds_to_epsilon(ex, target, eps, 5000))
        assert all(t is not None for t in times)
        assert times[0] <= times[1] <= times[2]
        # Doubling log(1/ε) should not blow up the time superlinearly.
        assert times[2] <= 6 * max(times[0], 1)

    def test_spread_monotone_nonincreasing(self):
        dyn = random_dynamic_strongly_connected(5, seed=3)
        ex = Execution(PushSumAlgorithm(), dyn, inputs=[1.0, 2.0, 3.0, 4.0, 5.0])
        prev = float("inf")
        for _ in range(60):
            ex.step()
            s = spread(ex.outputs())
            assert s <= prev + 1e-12
            prev = s


class TestQuotSumGenerality:
    def test_weighted_quot_sum_on_pulsed_graph(self):
        pairs = [(4.0, 2.0), (0.0, 1.0), (6.0, 1.0), (2.0, 4.0)]
        dyn = sparse_pulsed_dynamic(4, pulse_every=2, seed=5, symmetric=False)
        ex = Execution(PushSumAlgorithm(), dyn, inputs=pairs)
        t = rounds_to_epsilon(ex, quot_sum(pairs), 1e-7, 4000)
        assert t is not None

    def test_estimates_bounded_by_lemma_5_1(self):
        # Lemma 5.1: after D rounds, z_i ∈ [α^D Σw, Σw] with α = 1/n.
        n, total_w = 5, 5.0
        dyn = random_dynamic_strongly_connected(n, seed=9)
        d = dynamic_diameter(dyn, horizon=5)
        ex = Execution(PushSumAlgorithm(), dyn, inputs=[1.0] * n)
        ex.run(d)
        for t in range(20):
            ex.step()
            for (_y, z) in ex.states:
                assert z <= total_w + 1e-9
                assert z >= (1.0 / n) ** d * total_w - 1e-12
