"""Integration: the *proof* of Theorem 5.2, checked inequality by inequality.

`repro.analysis.rates` replays Push-Sum at the matrix level and verifies
each step of the paper's argument: the B(t) factorization, Lemma 5.1's
envelope, window safety, and the Dobrushin contraction.  These tests run
it across graph families — a numerical audit of the proof itself.
"""

import numpy as np
import pytest

from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.rates import trace_push_sum, verify_proof_invariants
from repro.core.execution import Execution
from repro.dynamics.diameter import dynamic_diameter
from repro.dynamics.dynamic_graph import StaticAsDynamic
from repro.dynamics.generators import (
    random_dynamic_strongly_connected,
    sparse_pulsed_dynamic,
)
from repro.graphs.builders import bidirectional_ring, directed_ring

VALUES = [3.0, 1.0, 4.0, 1.0, 5.0]


class TestProofInvariants:
    @pytest.mark.parametrize(
        "network",
        [
            StaticAsDynamic(directed_ring(5)),
            StaticAsDynamic(bidirectional_ring(5)),
            random_dynamic_strongly_connected(5, seed=7),
        ],
        ids=["directed-ring", "bidirectional-ring", "random-dynamic"],
    )
    def test_all_inequalities_hold(self, network):
        d = dynamic_diameter(network, horizon=5)
        trace = trace_push_sum(network, VALUES, rounds=30)
        problems = verify_proof_invariants(trace, d=d, n=5)
        assert problems == []

    def test_pulsed_graph_with_disconnected_rounds(self):
        network = sparse_pulsed_dynamic(4, pulse_every=2, seed=1, symmetric=False)
        d = dynamic_diameter(network, horizon=6)
        trace = trace_push_sum(network, VALUES[:4], rounds=4 * d)
        assert verify_proof_invariants(trace, d=d, n=4) == []

    def test_weighted_initialization(self):
        network = StaticAsDynamic(bidirectional_ring(5))
        trace = trace_push_sum(network, VALUES, weights=[1.0, 2.0, 1.0, 2.0, 1.0], rounds=25)
        assert verify_proof_invariants(trace, d=3, n=5) == []

    def test_invalid_weights_rejected(self):
        network = StaticAsDynamic(directed_ring(3))
        with pytest.raises(ValueError):
            trace_push_sum(network, [1.0, 2.0, 3.0], weights=[1.0, 0.0, 1.0])


class TestTraceMatchesSimulator:
    def test_matrix_trace_equals_agent_execution(self):
        # The matrix-level replay and the message-level simulator are the
        # same algorithm: estimates must agree round by round.
        network = random_dynamic_strongly_connected(5, seed=13)
        trace = trace_push_sum(network, VALUES, rounds=15)
        ex = Execution(PushSumAlgorithm(), network, inputs=VALUES)
        for t in range(1, 16):
            ex.step()
            np.testing.assert_allclose(ex.outputs(), trace.x_history[t], rtol=1e-9)

    def test_violations_are_detected(self):
        # Sanity of the verifier itself: corrupt the trace and see it flag.
        network = StaticAsDynamic(directed_ring(4))
        trace = trace_push_sum(network, VALUES[:4], rounds=10)
        trace.x_history[5] = trace.x_history[5] + np.array([10.0, 0, 0, 0])
        problems = verify_proof_invariants(trace, d=3, n=4)
        assert any("spread" in p for p in problems)
