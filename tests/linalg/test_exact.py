"""Tests for exact rational elimination and integer kernels."""

from fractions import Fraction

import pytest

from repro.linalg.exact import (
    gcd_list,
    integer_kernel_vector,
    kernel_basis,
    lcm_list,
    matvec,
    primitive_integer_vector,
    rational_rank,
)


class TestHelpers:
    def test_gcd_list(self):
        assert gcd_list([6, 9, 15]) == 3
        assert gcd_list([0, 0]) == 0
        assert gcd_list([-4, 6]) == 2

    def test_lcm_list(self):
        assert lcm_list([2, 3, 4]) == 12
        with pytest.raises(ValueError):
            lcm_list([2, 0])

    def test_matvec(self):
        assert matvec([[1, 2], [3, 4]], [1, 1]) == [3, 7]


class TestRank:
    def test_full_rank(self):
        assert rational_rank([[1, 0], [0, 1]]) == 2

    def test_rank_deficient(self):
        assert rational_rank([[1, 2], [2, 4]]) == 1

    def test_zero_matrix(self):
        assert rational_rank([[0, 0], [0, 0]]) == 0

    def test_rectangular(self):
        assert rational_rank([[1, 2, 3], [4, 5, 6]]) == 2


class TestKernel:
    def test_kernel_of_identity_empty(self):
        assert kernel_basis([[1, 0], [0, 1]]) == []

    def test_kernel_dimension(self):
        basis = kernel_basis([[1, 1, 1]])
        assert len(basis) == 2

    def test_kernel_vectors_annihilated(self):
        m = [[2, -1, 0], [0, 1, -2]]
        for vec in kernel_basis(m):
            for row in m:
                assert sum(Fraction(a) * x for a, x in zip(row, vec)) == 0

    def test_integer_kernel_vector(self):
        # Kernel of [[1, -2]] is spanned by (2, 1).
        assert integer_kernel_vector([[1, -2]]) == [2, 1]

    def test_integer_kernel_vector_none_when_dim_not_one(self):
        assert integer_kernel_vector([[1, 0], [0, 1]]) is None
        assert integer_kernel_vector([[0, 0], [0, 0]]) is None

    def test_coprimality(self):
        z = integer_kernel_vector([[3, -6]])
        assert z == [2, 1]
        assert gcd_list(z) == 1


class TestPrimitiveVector:
    def test_scaling_and_sign(self):
        assert primitive_integer_vector([Fraction(-1, 2), Fraction(-1, 3)]) == [3, 2]

    def test_already_integer(self):
        assert primitive_integer_vector([Fraction(4), Fraction(6)]) == [2, 3]

    def test_fibre_matrix_example(self):
        # Star on 4 vertices (hub + 3 leaves): fibres (1, 3).
        # M = [[d_hh - b_h, d_hl], [d_lh, d_ll - b_l]] with base edges
        # hub->leaf x1, leaf->hub x3, self-loops x1 each; b = (4, 2).
        m = [[1 - 4, 1], [3, 1 - 2]]
        z = integer_kernel_vector(m)
        assert z == [1, 3]
