"""Tests for the Perron–Frobenius analysis of fibre matrices (§4.2)."""

import numpy as np
import pytest

from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import random_strongly_connected, star_graph
from repro.linalg.exact import integer_kernel_vector, matvec
from repro.linalg.perron import (
    dominant_kernel_vector,
    fibre_matrix,
    kernel_dimension_is_one,
    perron_root,
    shifted_matrix,
)


def star_base_and_outdegrees():
    g = star_graph(4, values=["h", "l", "l", "l"])
    mb = minimum_base(g)
    b = [g.outdegree(mb.fibre(i)[0]) for i in range(mb.base.n)]
    return g, mb, b


class TestFibreMatrix:
    def test_star_matrix(self):
        _g, mb, b = star_base_and_outdegrees()
        m = fibre_matrix(mb.base, b)
        # Fibre sizes are in the kernel (eq. (1)).
        assert matvec(m, mb.fibre_sizes) == [0] * mb.base.n

    def test_length_mismatch(self):
        _g, mb, _b = star_base_and_outdegrees()
        with pytest.raises(ValueError):
            fibre_matrix(mb.base, [1])

    @pytest.mark.parametrize("seed", range(4))
    def test_kernel_dim_one_on_random_graphs(self, seed):
        g = random_strongly_connected(8, seed=seed).with_values(
            [0, 1, 0, 1, 0, 1, 0, 1]
        )
        mb = minimum_base(g)
        b = [g.outdegree(mb.fibre(i)[0]) for i in range(mb.base.n)]
        m = fibre_matrix(mb.base, b)
        assert kernel_dimension_is_one(m)
        z = integer_kernel_vector(m)
        assert z is not None
        # The kernel vector is proportional to the fibre sizes.
        k = mb.fibre_sizes[0] // z[0]
        assert [k * zi for zi in z] == mb.fibre_sizes


class TestPerron:
    def test_perron_root_of_positive_matrix(self):
        rho, x = perron_root(np.array([[2.0, 1.0], [1.0, 2.0]]))
        assert rho == pytest.approx(3.0, abs=1e-8)
        assert np.all(x > 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            perron_root(np.array([[-1.0]]))

    def test_shift_makes_nonnegative(self):
        _g, mb, b = star_base_and_outdegrees()
        m = fibre_matrix(mb.base, b)
        p = shifted_matrix(m)
        assert (p >= 0).all()
        assert (np.diagonal(p) > 0).all()

    def test_dominant_kernel_matches_exact(self):
        _g, mb, b = star_base_and_outdegrees()
        m = fibre_matrix(mb.base, b)
        x = dominant_kernel_vector(m)
        z = np.array(integer_kernel_vector(m), dtype=float)
        z /= z.sum()
        assert np.allclose(x, z, atol=1e-8)

    def test_against_scipy_eigenvalues(self):
        # Independent cross-check: scipy's dense eigensolver must agree
        # with our power iteration on the shifted fibre matrix.
        scipy_linalg = pytest.importorskip("scipy.linalg")
        _g, mb, b = star_base_and_outdegrees()
        m = fibre_matrix(mb.base, b)
        p = shifted_matrix(m)
        rho, x = perron_root(p)
        eigvals = scipy_linalg.eigvals(p)
        assert rho == pytest.approx(float(max(ev.real for ev in eigvals)), abs=1e-8)

    def test_zero_is_perron_value_of_m(self):
        # λ = ρ(P) - α must be 0 for the fibre matrix (Theorem 4.1 proof).
        _g, mb, b = star_base_and_outdegrees()
        m = fibre_matrix(mb.base, b)
        alpha = float(-np.diagonal(np.array(m, dtype=float)).min()) + 1.0
        rho, _x = perron_root(np.array(m, dtype=float) + alpha * np.eye(len(m)))
        assert rho - alpha == pytest.approx(0.0, abs=1e-8)
