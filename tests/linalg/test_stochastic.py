"""Tests for stochastic matrices, α-safety, Dobrushin coefficient (§5.2–5.3)."""

import numpy as np
import pytest

from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    directed_ring,
    random_symmetric_connected,
)
from repro.graphs.digraph import DiGraph
from repro.linalg.stochastic import (
    alpha_safety,
    backward_product,
    dobrushin_coefficient,
    is_column_stochastic,
    is_row_stochastic,
    metropolis_matrix,
    push_sum_matrix,
    seminorm_spread,
)


class TestPushSumMatrix:
    @pytest.mark.parametrize("builder", [directed_ring, bidirectional_ring, complete_graph])
    def test_column_stochastic(self, builder):
        a = push_sum_matrix(builder(5))
        assert is_column_stochastic(a)

    def test_entries_match_outdegrees(self):
        g = directed_ring(3)  # outdegree 2 everywhere (self + next)
        a = push_sum_matrix(g)
        assert a[1, 0] == pytest.approx(0.5)
        assert a[0, 0] == pytest.approx(0.5)

    def test_mass_conservation(self):
        g = bidirectional_ring(6)
        a = push_sum_matrix(g)
        v = np.arange(6.0)
        assert (a @ v).sum() == pytest.approx(v.sum())

    def test_alpha_safety(self):
        g = complete_graph(4)
        a = push_sum_matrix(g)
        assert alpha_safety(a) == pytest.approx(0.25)  # 1/n

    def test_safety_at_least_one_over_n(self):
        for seed in range(3):
            g = random_symmetric_connected(6, seed=seed)
            assert alpha_safety(push_sum_matrix(g)) >= 1 / 6 - 1e-12


class TestMetropolisMatrix:
    def test_doubly_stochastic_and_symmetric(self):
        g = random_symmetric_connected(7, seed=1)
        w = metropolis_matrix(g)
        assert is_row_stochastic(w)
        assert is_column_stochastic(w)
        assert np.allclose(w, w.T)

    def test_positive_diagonal(self):
        w = metropolis_matrix(bidirectional_ring(5))
        assert (np.diagonal(w) > 0).all()

    def test_lazy_halves_weights(self):
        g = bidirectional_ring(5)
        w = metropolis_matrix(g)
        lazy = metropolis_matrix(g, lazy=True)
        off = ~np.eye(5, dtype=bool)
        assert np.allclose(lazy[off], w[off] / 2)

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            metropolis_matrix(DiGraph(2, [(0, 1), (0, 0), (1, 1)]))

    def test_average_preserved(self):
        g = random_symmetric_connected(6, seed=2)
        w = metropolis_matrix(g)
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0])
        assert (w @ x).mean() == pytest.approx(x.mean())


class TestDobrushin:
    def test_identity_coefficient_one(self):
        assert dobrushin_coefficient(np.eye(3)) == pytest.approx(1.0)

    def test_rank_one_coefficient_zero(self):
        p = np.full((3, 3), 1 / 3)
        assert dobrushin_coefficient(p) == pytest.approx(0.0)

    def test_single_agent(self):
        assert dobrushin_coefficient(np.array([[1.0]])) == 0.0

    def test_bound_for_safe_complete_matrix(self):
        # δ(P) <= 1 - n·α for α-safe fully-connected P (§5.3).
        n = 4
        p = np.full((n, n), 1 / n)
        p = 0.5 * p + 0.5 * np.eye(n)  # still fully positive, α = 1/8
        alpha = alpha_safety(p)
        assert dobrushin_coefficient(p) <= 1 - n * alpha + 1e-12

    def test_submultiplicative(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            a = rng.random((4, 4))
            a /= a.sum(axis=1, keepdims=True)
            b = rng.random((4, 4))
            b /= b.sum(axis=1, keepdims=True)
            assert dobrushin_coefficient(a @ b) <= (
                dobrushin_coefficient(a) * dobrushin_coefficient(b) + 1e-12
            )

    def test_contracts_seminorm(self):
        rng = np.random.default_rng(1)
        p = rng.random((5, 5))
        p /= p.sum(axis=1, keepdims=True)
        x = rng.random(5) * 10
        assert seminorm_spread(p @ x) <= dobrushin_coefficient(p) * seminorm_spread(x) + 1e-12


class TestBackwardProduct:
    def test_order(self):
        a = np.array([[1.0, 1.0], [0.0, 1.0]])
        b = np.array([[1.0, 0.0], [1.0, 1.0]])
        # backward_product([A(t), A(t+1)]) = A(t+1) @ A(t)
        assert np.allclose(backward_product([a, b]), b @ a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            backward_product([])

    def test_column_stochastic_closed(self):
        gs = [directed_ring(4), bidirectional_ring(4), complete_graph(4)]
        prod = backward_product([push_sum_matrix(g) for g in gs])
        assert is_column_stochastic(prod)
