"""Property: the distributed base pipeline matches the centralized one.

For random directed graphs and valuations, the outdegree-aware view
algorithm must extract a base whose fibre ratios equal the centralized
fibre sizes of the double-valued graph ``G_{v,d⁻}`` (up to the common
factor of eq. (2)) — the regression domain where hypothesis previously
found the hidden-degree-twin bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.fibre_solver import fibre_ratios_outdegree, fibre_ratios_symmetric
from repro.algorithms.minimum_base_alg import (
    OutdegreeViewAlgorithm,
    SymmetricViewAlgorithm,
    extract_base,
)
from repro.core.execution import Execution
from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.linalg.exact import gcd_list

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
)


def reduced(sizes):
    g = gcd_list(sizes)
    return sorted(s // g for s in sizes)


class TestOutdegreePipeline:
    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_ratios_match_g_od_fibres(self, p):
        n, seed, k = p
        g = random_strongly_connected(n, seed=seed)
        inputs = [i % k for i in range(n)]
        alg = OutdegreeViewAlgorithm()
        ex = Execution(alg, g, inputs=inputs)
        ex.run(2 * (n + n) + 4)
        base = extract_base(ex.states[0][1], alg.builder, skip_root=True)
        assert base is not None
        z = fibre_ratios_outdegree(base)
        assert z is not None

        god = g.with_values(inputs).with_pair_values(
            [g.outdegree(v) for v in g.vertices()]
        )
        truth = minimum_base(god)
        assert base.n == truth.base.n
        assert reduced(z) == reduced(truth.fibre_sizes)


class TestSymmetricPipeline:
    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_ratios_match_plain_fibres(self, p):
        n, seed, k = p
        g = random_symmetric_connected(n, seed=seed)
        inputs = [i % k for i in range(n)]
        alg = SymmetricViewAlgorithm()
        ex = Execution(alg, g, inputs=inputs)
        ex.run(2 * (n + n) + 4)
        base = extract_base(ex.states[0][1], alg.builder)
        assert base is not None
        z = fibre_ratios_symmetric(base)
        assert z is not None
        truth = minimum_base(g.with_values(inputs))
        assert base.n == truth.base.n
        assert reduced(z) == reduced(truth.fibre_sizes)
