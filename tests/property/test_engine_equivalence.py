"""Engine equivalence: the compiled fast path IS the naive interpreter.

The layered engine (plans + transports + stepper) must produce state
trajectories bit-identical to the single-layer reference interpreter
(:class:`repro.core.engine.reference.ReferenceExecution`) — across all
four communication models, on static and dynamic networks, with and
without scrambling.  Order-*sensitive* recording algorithms are used on
purpose: they expose any difference in delivery order or in RNG stream
consumption, which multiset algorithms would silently forgive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import BroadcastAlgorithm, OutdegreeAlgorithm, OutputPortAlgorithm
from repro.core.engine import ReferenceExecution
from repro.core.execution import Execution
from repro.core.metrics import canonical_repr
from repro.core.models import CommunicationModel
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import (
    random_strongly_connected,
    random_symmetric_connected,
)


class RecordBroadcast(BroadcastAlgorithm):
    """State = (own value, full history of received tuples) — order-sensitive."""

    def initial_state(self, input_value):
        return (input_value, ())

    def message(self, state):
        return state[0]

    def transition(self, state, received):
        return (state[0], state[1] + (received,))

    def output(self, state):
        return state[1]


class RecordSymmetric(RecordBroadcast):
    model = CommunicationModel.SYMMETRIC


class RecordOutdegree(OutdegreeAlgorithm):
    """Broadcasts (value, outdegree); state accumulates received tuples."""

    def initial_state(self, input_value):
        return (input_value, ())

    def message(self, state, outdegree):
        return (state[0], outdegree)

    def transition(self, state, received):
        return (state[0], state[1] + (received,))

    def output(self, state):
        return state[1]


class RecordPorts(OutputPortAlgorithm):
    """Sends (value, port) per port; state accumulates received tuples."""

    def initial_state(self, input_value):
        return (input_value, ())

    def messages(self, state, outdegree):
        return [(state[0], port) for port in range(outdegree)]

    def transition(self, state, received):
        return (state[0], state[1] + (received,))

    def output(self, state):
        return state[1]


params = st.tuples(
    st.integers(min_value=2, max_value=7),   # n
    st.integers(min_value=0, max_value=10_000),  # graph seed
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),  # scramble
)

ROUNDS = 4


def assert_same_trajectory(algorithm_factory, network, inputs, scramble_seed):
    fast = Execution(algorithm_factory(), network, inputs=inputs, scramble_seed=scramble_seed)
    naive = ReferenceExecution(
        algorithm_factory(), network, inputs=inputs, scramble_seed=scramble_seed
    )
    for _ in range(ROUNDS):
        fast.step()
        naive.step()
        assert fast.round_number == naive.round_number
        assert fast.states == naive.states, (
            f"trajectories diverged at round {fast.round_number}"
        )
        # Belt and braces: canonical forms agree too (catches == overloads).
        assert [canonical_repr(s) for s in fast.states] == [
            canonical_repr(s) for s in naive.states
        ]


class TestStaticEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_broadcast(self, p):
        n, seed, scramble = p
        g = random_strongly_connected(n, seed=seed)
        assert_same_trajectory(RecordBroadcast, g, list(range(n)), scramble)

    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_symmetric(self, p):
        n, seed, scramble = p
        g = random_symmetric_connected(n, seed=seed)
        assert_same_trajectory(RecordSymmetric, g, list(range(n)), scramble)

    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_outdegree(self, p):
        n, seed, scramble = p
        g = random_strongly_connected(n, seed=seed)
        assert_same_trajectory(RecordOutdegree, g, list(range(n)), scramble)

    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_output_ports(self, p):
        n, seed, scramble = p
        g = random_strongly_connected(n, seed=seed)
        assert_same_trajectory(RecordPorts, g, list(range(n)), scramble)


class TestDynamicEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_broadcast_on_periodic_graphs(self, p):
        n, seed, scramble = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + k) for k in range(3)]
        )
        assert_same_trajectory(RecordBroadcast, dyn, list(range(n)), scramble)

    @settings(max_examples=20, deadline=None)
    @given(params)
    def test_outdegree_on_periodic_graphs(self, p):
        n, seed, scramble = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + k) for k in range(3)]
        )
        assert_same_trajectory(RecordOutdegree, dyn, list(range(n)), scramble)

    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_symmetric_on_periodic_graphs(self, p):
        n, seed, scramble = p
        dyn = PeriodicDynamicGraph(
            [random_symmetric_connected(n, seed=seed + k) for k in range(2)]
        )
        assert_same_trajectory(RecordSymmetric, dyn, list(range(n)), scramble)
