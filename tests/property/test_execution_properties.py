"""Property-based tests for the executor and the Lifting lemma.

The headline property: for *every* randomly generated graph, valuation,
and anonymous algorithm in our library, executions lift along the minimum
base projection (Lemma 3.1) — the paper's central structural fact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.impossibility import verify_lifting_on_outputs
from repro.core.execution import Execution
from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
    st.integers(min_value=1, max_value=3),
)


def build(p):
    n, seed, symmetric, k = p
    builder = random_symmetric_connected if symmetric else random_strongly_connected
    g = builder(n, seed=seed)
    return g.with_values([float(i % k) for i in range(n)])


class TestLiftingLemmaProperty:
    @settings(max_examples=25, deadline=None)
    @given(params)
    def test_gossip_lifts_through_minimum_base(self, p):
        g = build(p)
        mb = minimum_base(g)
        assert verify_lifting_on_outputs(
            mb.fibration, GossipAlgorithm, list(mb.base.values), rounds=6
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=4),
        st.booleans(),
        st.lists(st.floats(min_value=-3, max_value=9), min_size=4, max_size=4),
    )
    def test_push_sum_lifts_through_ring_collapses(self, p, mult, directed, vals):
        # Push-Sum is outdegree-aware, so executions only lift along
        # fibrations that preserve the *actual* outdegrees — which the §4.1
        # ring collapses do ("this fibration preserves ... the outdegree
        # valuation"), while generic minimum-base projections do not
        # (footnote 5: b_i may differ from i's outdegree in B).
        from repro.fibrations.fibration import ring_collapse

        phi = ring_collapse(p * mult, p, directed=directed)
        assert verify_lifting_on_outputs(
            phi, PushSumAlgorithm, vals[:p], rounds=6
        )

    @settings(max_examples=25, deadline=None)
    @given(params)
    def test_push_sum_need_not_lift_through_plain_bases(self, p):
        # The complementary fact: along a minimum-base projection whose
        # fibres change outdegree, Push-Sum on G and on B may genuinely
        # diverge — this is the broadcast/outdegree separation itself, so
        # we only check that the verifier never crashes and returns a bool.
        g = build(p)
        mb = minimum_base(g)
        result = verify_lifting_on_outputs(
            mb.fibration, PushSumAlgorithm, [float(hash(repr(v)) % 5) for v in mb.base.values], rounds=4
        )
        assert result in (True, False)


class TestExecutorInvariants:
    @settings(max_examples=25, deadline=None)
    @given(params, st.integers(min_value=0, max_value=2**31 - 1))
    def test_scramble_seed_never_changes_gossip(self, p, scramble):
        # Gossip is a true multiset algorithm: delivery order is invisible.
        g = build(p)
        a = Execution(GossipAlgorithm(), g, inputs=list(g.values), scramble_seed=0)
        b = Execution(GossipAlgorithm(), g, inputs=list(g.values), scramble_seed=scramble)
        a.run(5)
        b.run(5)
        assert a.outputs() == b.outputs()

    @settings(max_examples=25, deadline=None)
    @given(params)
    def test_push_sum_masses_conserved(self, p):
        g = build(p)
        inputs = [(float(v), 1.0) for v in g.values]
        ex = Execution(PushSumAlgorithm(), g, inputs=inputs)
        total_y = sum(v for v, _w in inputs)
        for _ in range(6):
            ex.step()
            assert abs(sum(s[0] for s in ex.states) - total_y) < 1e-9
            assert abs(sum(s[1] for s in ex.states) - g.n) < 1e-9
