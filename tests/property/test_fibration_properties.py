"""Property-based tests for fibrations and minimum bases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fibrations.fibration import fibres, is_fibration
from repro.fibrations.minimum_base import equitable_partition, minimum_base
from repro.fibrations.prime import is_fibration_prime
from repro.functions.frequency import frequencies_of
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.linalg.exact import matvec
from repro.linalg.perron import fibre_matrix


graph_params = st.tuples(
    st.integers(min_value=2, max_value=8),  # n
    st.integers(min_value=0, max_value=10_000),  # seed
    st.booleans(),  # symmetric
    st.integers(min_value=1, max_value=3),  # number of distinct values
)


def build(params):
    n, seed, symmetric, k = params
    builder = random_symmetric_connected if symmetric else random_strongly_connected
    g = builder(n, seed=seed)
    return g.with_values([i % k for i in range(n)])


class TestMinimumBaseProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_projection_is_fibration(self, params):
        mb = minimum_base(build(params))
        assert is_fibration(mb.fibration)

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_base_is_prime(self, params):
        mb = minimum_base(build(params))
        assert is_fibration_prime(mb.base)

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_fibre_sizes_partition_vertices(self, params):
        g = build(params)
        mb = minimum_base(g)
        assert sum(mb.fibre_sizes) == g.n
        assert all(s >= 1 for s in mb.fibre_sizes)

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_partition_refines_values(self, params):
        g = build(params)
        classes = equitable_partition(g)
        for v in g.vertices():
            for w in g.vertices():
                if classes[v] == classes[w]:
                    assert repr(g.value(v)) == repr(g.value(w))

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_fibre_sizes_solve_eq_1(self, params):
        # Eq. (1): the fibre-size vector is in ker M.  As in §4.2 the graph
        # is double-valued with the outdegrees (G_{v,d⁻}), which makes the
        # outdegree constant on each fibre (footnote 5).
        g = build(params)
        g = g.with_pair_values([g.outdegree(v) for v in g.vertices()])
        mb = minimum_base(g)
        b = [g.outdegree(mb.fibre(i)[0]) for i in range(mb.base.n)]
        for i in mb.base.vertices():
            assert {g.outdegree(v) for v in mb.fibre(i)} == {b[i]}
        m = fibre_matrix(mb.base, b)
        assert matvec(m, mb.fibre_sizes) == [0] * mb.base.n

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_base_values_frequency_equivalent(self, params):
        # The base valuation weighted by fibre sizes realizes the input's
        # frequency function — the heart of Theorem 4.1's positive side.
        g = build(params)
        mb = minimum_base(g)
        reconstructed = []
        for i in mb.base.vertices():
            reconstructed.extend([mb.base.value(i)] * mb.fibre_sizes[i])
        assert frequencies_of(reconstructed) == frequencies_of(g.values)

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_fibres_have_equal_indegrees(self, params):
        # Fibres are in-equitable: indegrees (not outdegrees!) are
        # constant on every fibre — exactly why the paper must value the
        # graph with outdegrees before eq. (1) applies.
        g = build(params)
        mb = minimum_base(g)
        for i in mb.base.vertices():
            in_degs = {g.indegree(v) for v in mb.fibre(i)}
            assert len(in_degs) == 1

    @settings(max_examples=30, deadline=None)
    @given(graph_params)
    def test_fibres_consistent_with_fibration(self, params):
        mb = minimum_base(build(params))
        fb = fibres(mb.fibration)
        assert {k: sorted(v) for k, v in fb.items()} == {
            i: mb.fibre(i) for i in mb.base.vertices()
        }
