"""Property-based tests for frequency functions (§2.3)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.frequency import FrequencyFunction, frequencies_of
from repro.functions.library import AVERAGE, MAXIMUM, SUM

vectors = st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=12)


class TestFrequencyFunctionProperties:
    @given(vectors)
    def test_frequencies_sum_to_one(self, vec):
        nu = frequencies_of(vec)
        assert sum(f for _v, f in nu.items()) == 1

    @given(vectors)
    def test_frequency_matches_count(self, vec):
        nu = frequencies_of(vec)
        for value in set(vec):
            assert nu[value] == Fraction(vec.count(value), len(vec))

    @given(vectors, st.integers(min_value=1, max_value=4))
    def test_repetition_invariance(self, vec, reps):
        assert frequencies_of(vec) == frequencies_of(vec * reps)

    @given(vectors, st.randoms(use_true_random=False))
    def test_permutation_invariance(self, vec, rng):
        shuffled = list(vec)
        rng.shuffle(shuffled)
        assert frequencies_of(vec) == frequencies_of(shuffled)

    @given(vectors)
    def test_canonical_vector_is_minimal_realization(self, vec):
        nu = frequencies_of(vec)
        canon = nu.canonical_vector()
        assert frequencies_of(canon) == nu
        assert len(vec) % len(canon) == 0  # canonical length divides n

    @given(vectors)
    def test_canonical_vector_idempotent(self, vec):
        nu = frequencies_of(vec)
        canon = nu.canonical_vector()
        assert frequencies_of(canon).canonical_vector() == canon

    @given(vectors, st.integers(min_value=1, max_value=3))
    def test_scaled_vector_roundtrip(self, vec, factor):
        nu = frequencies_of(vec)
        n = nu.minimal_size() * factor
        scaled = nu.scaled_vector(n)
        assert len(scaled) == n
        assert frequencies_of(scaled) == nu


class TestFunctionClassProperties:
    @given(vectors, st.integers(min_value=1, max_value=3))
    def test_average_frequency_based(self, vec, reps):
        assert AVERAGE(vec) == AVERAGE(vec * reps)

    @given(vectors, st.integers(min_value=2, max_value=3))
    def test_sum_not_frequency_based_unless_zero(self, vec, reps):
        if SUM(vec) != 0:
            assert SUM(vec * reps) != SUM(vec)

    @given(vectors)
    def test_max_set_based(self, vec):
        assert MAXIMUM(vec) == MAXIMUM(sorted(set(vec)))

    @given(vectors)
    def test_average_in_convex_hull(self, vec):
        assert min(vec) <= AVERAGE(vec) <= max(vec)
