"""Property tests for history-class counting over random dynamic graphs.

The flagship exactness claim: on *any* dynamic symmetric network with
recurrent connectivity, the history-tree algorithm eventually outputs
the exact input frequencies — as rationals, with no knowledge of n.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.history_tree import HistoryTreeAlgorithm
from repro.core.execution import Execution
from repro.dynamics.generators import random_dynamic_symmetric
from repro.functions.frequency import frequencies_of

params = st.tuples(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
    st.lists(st.integers(min_value=0, max_value=2), min_size=5, max_size=5),
)


class TestExactFrequencies:
    @settings(max_examples=8, deadline=None)
    @given(params)
    def test_eventually_exact_everywhere(self, p):
        n, seed, values = p
        inputs = values[:n]
        truth = {w: f for w, f in frequencies_of(inputs).items()}
        dyn = random_dynamic_symmetric(n, seed=seed)
        ex = Execution(HistoryTreeAlgorithm(), dyn, inputs=inputs)
        ex.run(4 * n + 8)
        for out in ex.outputs():
            assert out == truth

    @settings(max_examples=8, deadline=None)
    @given(params)
    def test_outputs_are_exact_rationals_summing_to_one(self, p):
        n, seed, values = p
        inputs = values[:n]
        dyn = random_dynamic_symmetric(n, seed=seed)
        ex = Execution(HistoryTreeAlgorithm(), dyn, inputs=inputs)
        ex.run(4 * n + 8)
        out = ex.outputs()[0]
        assert out is not None
        assert all(isinstance(f, Fraction) for f in out.values())
        assert sum(out.values(), Fraction(0)) == 1

    @settings(max_examples=4, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=2, max_value=3),
            st.integers(min_value=0, max_value=10_000),
            st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=3),
        )
    )
    def test_frequency_blindness_to_multiplicities(self, p):
        # Two networks whose inputs are ν-equivalent (the vector repeated)
        # produce the same frequency output — the positive half of
        # "frequency-based" at the system level.  Sizes stay small: the
        # doubled network's exact-arithmetic solves grow fast.
        n, seed, values = p
        inputs = values[:n]
        small = Execution(
            HistoryTreeAlgorithm(), random_dynamic_symmetric(n, seed=seed), inputs=inputs
        )
        big = Execution(
            HistoryTreeAlgorithm(),
            random_dynamic_symmetric(2 * n, seed=seed),
            inputs=inputs * 2,
        )
        small.run(4 * n + 8)
        big.run(8 * n + 8)
        assert small.outputs()[0] == big.outputs()[0]
