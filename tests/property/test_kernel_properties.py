"""Property-based tests for the exact linear algebra layer."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.exact import (
    gcd_list,
    integer_kernel_vector,
    kernel_basis,
    primitive_integer_vector,
    rational_rank,
)

small_int = st.integers(min_value=-6, max_value=6)
matrices = st.integers(min_value=1, max_value=5).flatmap(
    lambda rows: st.integers(min_value=1, max_value=5).flatmap(
        lambda cols: st.lists(
            st.lists(small_int, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


class TestKernelProperties:
    @settings(max_examples=80, deadline=None)
    @given(matrices)
    def test_rank_nullity(self, m):
        cols = len(m[0])
        assert rational_rank(m) + len(kernel_basis(m)) == cols

    @settings(max_examples=80, deadline=None)
    @given(matrices)
    def test_kernel_vectors_annihilated(self, m):
        for vec in kernel_basis(m):
            for row in m:
                assert sum(Fraction(a) * x for a, x in zip(row, vec)) == 0

    @settings(max_examples=80, deadline=None)
    @given(matrices)
    def test_integer_kernel_consistency(self, m):
        z = integer_kernel_vector(m)
        if z is not None:
            assert gcd_list(z) in (0, 1)
            for row in m:
                assert sum(a * x for a, x in zip(row, z)) == 0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.fractions(min_value=-5, max_value=5), min_size=1, max_size=6))
    def test_primitive_vector_parallel(self, vec):
        ints = primitive_integer_vector(vec)
        assert len(ints) == len(vec)
        if any(v != 0 for v in vec):
            # ints is parallel to vec: cross-ratios agree.
            iv = [(i, v) for i, v in enumerate(vec) if v != 0]
            i0, v0 = iv[0]
            for i, v in iv[1:]:
                assert Fraction(ints[i], ints[i0]) == v / v0
            assert gcd_list(ints) == 1
            first = next(x for x in ints if x != 0)
            assert first > 0
        else:
            assert all(x == 0 for x in ints)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(small_int, min_size=2, max_size=5))
    def test_rank_one_construction(self, vec):
        # The outer-product-like matrix [v; 2v; ...] has rank <= 1.
        m = [vec, [2 * x for x in vec], [0 * x for x in vec]]
        assert rational_rank(m) <= 1
