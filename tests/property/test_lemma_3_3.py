"""Lemma 3.3 as a property: anonymous outputs are permutation-equivariant.

Network classes are closed under isomorphism, so relabeling the vertices
of a network (and permuting the inputs accordingly) permutes the outputs
the same way — hence only multiset-based functions can be computed.
Hypothesis sweeps graphs, inputs, and permutations, running real
algorithms on both sides of the isomorphism.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.core.execution import Execution
from repro.graphs.builders import random_strongly_connected
from repro.graphs.digraph import DiGraph

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.permutations(list(range(7))),
    st.integers(min_value=1, max_value=3),
)


def permuted(g: DiGraph, perm):
    specs = [(perm[e.source], perm[e.target], e.color) for e in g.edges]
    return DiGraph(g.n, specs)


class TestPermutationEquivariance:
    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_gossip_outputs_permute(self, p):
        n, seed, full_perm, k = p
        perm = [x for x in full_perm if x < n]
        g = random_strongly_connected(n, seed=seed)
        h = permuted(g, perm)
        inputs = [i % k for i in range(n)]
        permuted_inputs = [None] * n
        for v in range(n):
            permuted_inputs[perm[v]] = inputs[v]
        a = Execution(GossipAlgorithm(), g, inputs=inputs).run(n + 2)
        b = Execution(GossipAlgorithm(), h, inputs=permuted_inputs).run(n + 2)
        for v in range(n):
            assert a.outputs()[v] == b.outputs()[perm[v]]

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_push_sum_output_multiset_invariant(self, p):
        n, seed, full_perm, k = p
        perm = [x for x in full_perm if x < n]
        g = random_strongly_connected(n, seed=seed)
        h = permuted(g, perm)
        inputs = [float(i % k) for i in range(n)]
        permuted_inputs = [0.0] * n
        for v in range(n):
            permuted_inputs[perm[v]] = inputs[v]
        a = Execution(PushSumAlgorithm(), g, inputs=inputs).run(8)
        b = Execution(PushSumAlgorithm(), h, inputs=permuted_inputs).run(8)
        rounded_a = Counter(round(x, 9) for x in a.outputs())
        rounded_b = Counter(round(x, 9) for x in b.outputs())
        assert rounded_a == rounded_b
