"""The one-bit broadcast model: engine faithfulness and engine hygiene.

ONE_BIT_BROADCAST carries a single bit per agent per round — the model
of Blanc, Di Luna & Viglietta's self-stabilizing clock work, and the
natural floor of the paper's "what does a sender know about its
audience" axis.  These properties pin its engine contract:

* the compiled fast path (:class:`~repro.core.engine.stepper.EngineStepper`
  via :class:`~repro.core.engine.transport.OneBitTransport`) is
  bit-identical to the naive :class:`~repro.core.engine.reference.ReferenceExecution`
  interpreter across static and dynamic networks;
* snapshot/restore round-trips resume on the exact trajectory;
* attaching a tracer never perturbs the run;
* the vector backend falls back transparently (no one-bit kernel is
  registered) and the quotient backend refuses to activate (the model is
  not outdegree-message-preserving), both with identical results;
* anything outside {0, 1} on the wire is rejected, identically, by the
  engine and the reference interpreter.

``REPRO_VECTOR`` / ``REPRO_PARALLEL`` reruns of this file in CI exercise
the same assertions through the engine's other defaults.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import OneBitCensusAlgorithm, OneBitFloodingAlgorithm
from repro.core.agent import OneBitAlgorithm
from repro.core.engine import BatchJob, run_batch
from repro.core.engine.reference import ReferenceExecution
from repro.core.engine.trace import trace_execution
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    random_strongly_connected,
)

ROUNDS = 6

seeds = st.integers(min_value=0, max_value=40)
sizes = st.integers(min_value=2, max_value=9)
bits = st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=9)


def _inputs(n, seed):
    return [(v * 31 + seed) % 2 for v in range(n)]


def _dynamic(n, seed):
    return PeriodicDynamicGraph(
        [random_strongly_connected(n, seed=seed + i) for i in range(3)]
    )


ALGORITHMS = [
    ("flood", lambda: OneBitFloodingAlgorithm()),
    ("census", lambda: OneBitCensusAlgorithm()),
]


# ---------------------------------------------------------------------- #
# engine == reference interpreter, bit for bit
# ---------------------------------------------------------------------- #

class TestEngineReferenceIdentity:
    @pytest.mark.parametrize("name,make", ALGORITHMS)
    @settings(max_examples=10)
    @given(seed=seeds, n=sizes)
    def test_static(self, name, make, seed, n):
        g = random_strongly_connected(n, seed=seed)
        inputs = _inputs(n, seed)
        eng = Execution(make(), g, inputs=inputs)
        ref = ReferenceExecution(make(), g, inputs=inputs)
        for _ in range(ROUNDS):
            eng.step()
            ref.step()
            assert eng.states == ref.states
        assert eng.outputs() == ref.outputs()

    @pytest.mark.parametrize("name,make", ALGORITHMS)
    @settings(max_examples=8)
    @given(seed=seeds, n=sizes)
    def test_dynamic(self, name, make, seed, n):
        dyn = _dynamic(n, seed)
        inputs = _inputs(n, seed)
        eng = Execution(make(), dyn, inputs=inputs)
        ref = ReferenceExecution(make(), dyn, inputs=inputs)
        eng.run(ROUNDS)
        ref.run(ROUNDS)
        assert eng.states == ref.states

    @settings(max_examples=10)
    @given(inputs=bits)
    def test_flooding_converges_to_or(self, inputs):
        n = len(inputs)
        g = bidirectional_ring(n)
        eng = Execution(OneBitFloodingAlgorithm(), g, inputs=inputs)
        eng.run(n)  # ring diameter bounds the flood
        assert eng.outputs() == [max(inputs)] * n

    @settings(max_examples=10)
    @given(inputs=bits)
    def test_census_counts_exactly_on_complete(self, inputs):
        n = len(inputs)
        eng = Execution(OneBitCensusAlgorithm(), complete_graph(n), inputs=inputs)
        eng.run(2)
        assert eng.outputs() == [(n, sum(inputs))] * n


# ---------------------------------------------------------------------- #
# snapshot/restore and tracing hygiene
# ---------------------------------------------------------------------- #

class TestSnapshotAndTrace:
    @settings(max_examples=8)
    @given(seed=seeds, n=sizes)
    def test_snapshot_restore_round_trip(self, seed, n):
        g = random_strongly_connected(n, seed=seed)
        inputs = _inputs(n, seed)
        straight = Execution(OneBitCensusAlgorithm(), g, inputs=inputs).run(ROUNDS)
        resumed = Execution(OneBitCensusAlgorithm(), g, inputs=inputs)
        resumed.run(ROUNDS // 2)
        snap = resumed.snapshot()
        fresh = Execution(OneBitCensusAlgorithm(), g, inputs=inputs)
        fresh.restore(snap)
        fresh.run(ROUNDS - ROUNDS // 2)
        assert fresh.states == straight.states
        assert fresh.round_number == straight.round_number

    @settings(max_examples=8)
    @given(seed=seeds, n=sizes)
    def test_trace_does_not_interfere(self, seed, n):
        g = random_strongly_connected(n, seed=seed)
        inputs = _inputs(n, seed)
        plain = Execution(OneBitFloodingAlgorithm(), g, inputs=inputs)
        traced = Execution(OneBitFloodingAlgorithm(), g, inputs=inputs)
        tracer = trace_execution(traced, rounds=ROUNDS)
        plain.run(ROUNDS)
        assert traced.states == plain.states
        assert len(tracer.round_events()) == ROUNDS
        # One bit per edge: per-round payload accounting is exactly the
        # delivered message count.
        for event in tracer.round_events():
            assert event.fields["bytes_delivered"] == event.fields["messages"]


# ---------------------------------------------------------------------- #
# accelerated backends fall back, identically
# ---------------------------------------------------------------------- #

class TestBackendFallbacks:
    def test_vector_falls_back_no_kernel(self):
        from repro.core.engine.vector import clear_vector_stats, vector_stats

        g = random_strongly_connected(6, seed=3)
        inputs = _inputs(6, 3)
        clear_vector_stats()
        direct = Execution(OneBitCensusAlgorithm(), g, inputs=inputs)
        vec = Execution(OneBitCensusAlgorithm(), g, inputs=inputs, vector=True)
        assert not vec.vector_active
        assert vec.vector_fallback_reason == "no-kernel"
        assert vector_stats()["fallback_reasons"].get("no-kernel", 0) >= 1
        direct.run(ROUNDS)
        vec.run(ROUNDS)
        assert vec.states == direct.states

    def test_quotient_refuses_one_bit_model(self):
        from repro.core.engine.quotient import clear_quotient_stats, quotient_stats

        g = bidirectional_ring(6)  # vertex-transitive: every other gate passes
        clear_quotient_stats()
        direct = Execution(OneBitFloodingAlgorithm(), g, inputs=[1] * 6)
        quo = Execution(OneBitFloodingAlgorithm(), g, inputs=[1] * 6, quotient=True)
        assert not quo.quotient_active
        assert quo.quotient_fallback_reason == "model-not-message-preserving"
        stats = quotient_stats()
        assert stats["activations"] == 0
        assert stats["fallback_reasons"] == {"model-not-message-preserving": 1}
        direct.run(ROUNDS)
        quo.run(ROUNDS)
        assert quo.states == direct.states

    def test_run_batch_all_modes_agree(self):
        def jobs():
            g = random_strongly_connected(6, seed=4)
            dyn = _dynamic(6, 4)
            return [
                BatchJob(
                    OneBitFloodingAlgorithm(), g, inputs=_inputs(6, 4), rounds=ROUNDS
                ),
                BatchJob(
                    OneBitCensusAlgorithm(), dyn, inputs=_inputs(6, 5), rounds=ROUNDS
                ),
            ]

        base = [r.outputs for r in run_batch(jobs(), parallel=False)]
        assert [r.outputs for r in run_batch(jobs(), vector=True)] == base
        assert [r.outputs for r in run_batch(jobs(), quotient=True)] == base
        assert [
            r.outputs for r in run_batch(jobs(), parallel=True, workers=2)
        ] == base


# ---------------------------------------------------------------------- #
# wire discipline: only 0 and 1 travel
# ---------------------------------------------------------------------- #

class _Leaky(OneBitAlgorithm):
    """Emits a forbidden payload so both interpreters must reject it."""

    def __init__(self, payload):
        self.payload = payload

    def initial_state(self, input_value):
        return input_value

    def bit(self, state, outdegree):
        return self.payload

    def transition(self, state, received):
        return state

    def output(self, state):
        return state


class TestWireDiscipline:
    @pytest.mark.parametrize("payload", [2, -1, 0.0, 1.0, "1", None, [1]])
    def test_engine_rejects_non_bits(self, payload):
        g = complete_graph(3)
        execution = Execution(_Leaky(payload), g, inputs=[0, 1, 0])
        with pytest.raises(ValueError, match="only carries 0 or 1"):
            execution.step()

    @pytest.mark.parametrize("payload", [2, -1, 0.0, "1", None])
    def test_reference_rejects_non_bits(self, payload):
        g = complete_graph(3)
        ref = ReferenceExecution(_Leaky(payload), g, inputs=[0, 1, 0])
        with pytest.raises(ValueError, match="only carries 0 or 1"):
            ref.step()

    @pytest.mark.parametrize("payload", [True, False])
    def test_booleans_normalize_identically(self, payload):
        g = complete_graph(3)
        eng = Execution(_Leaky(payload), g, inputs=[0, 1, 0])
        ref = ReferenceExecution(_Leaky(payload), g, inputs=[0, 1, 0])
        eng.step()
        ref.step()
        assert eng.states == ref.states

    def test_model_properties(self):
        model = CommunicationModel.ONE_BIT_BROADCAST
        assert model.isotropic
        assert model.sees_outdegree
        assert not model.static_only
        assert not model.requires_symmetric_network
        assert not model.outdegree_message_preserving
