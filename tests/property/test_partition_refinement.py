"""Property tests for the worklist refiner and the memo layer (PR 4).

Two families of guarantees:

* the Hopcroft/Paige–Tarjan-style worklist refiner induces exactly the
  partition of the retained naive reference, its canonical labels are
  invariant under vertex relabeling, and its output quotients cleanly;
* memoization is invisible: whole Table-1/2 documents serialize to the
  same bytes with the memo layer on or off, sequentially and under the
  process-parallel backend.
"""

import json
import os
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables import reproduce_table1, reproduce_table2
from repro.core.memo import clear_memos, memo_disabled
from repro.fibrations.minimum_base import (
    equitable_partition,
    equitable_partition_reference,
    quotient_by_partition,
    same_partition,
)
from repro.graphs.digraph import DiGraph

# Colors/values deliberately mix ==-equal payloads with different reprs
# (Fraction(1, 1) vs 1.0, True vs 1) and unhashable containers.
COLORS = [None, 0, 1, "a", Fraction(1, 1), 1.0, frozenset({1, 2})]
VALUES = [0, 1, True, Fraction(2, 1), 2, "x", (1, True)]

random_digraphs = st.integers(min_value=1, max_value=10).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from(COLORS),
            ),
            max_size=3 * n,
        ),
        st.one_of(
            st.none(),
            st.lists(st.sampled_from(VALUES), min_size=n, max_size=n),
        ),
    )
)


def build(params) -> DiGraph:
    n, specs, values = params
    return DiGraph(n, specs, values=values)


class TestWorklistAgainstReference:
    @settings(max_examples=120, deadline=None)
    @given(random_digraphs)
    def test_same_partition_as_naive_reference(self, params):
        g = build(params)
        assert same_partition(equitable_partition(g), equitable_partition_reference(g))

    @settings(max_examples=60, deadline=None)
    @given(random_digraphs)
    def test_refiner_output_quotients_cleanly(self, params):
        g = build(params)
        classes = equitable_partition(g)
        mb = quotient_by_partition(g, classes)  # verify=True must accept
        assert mb.fibration.is_valid()
        assert sum(mb.fibre_sizes) == g.n

    @settings(max_examples=60, deadline=None)
    @given(random_digraphs, st.randoms(use_true_random=False))
    def test_canonical_labels_are_relabel_invariant(self, params, rnd):
        n, specs, values = params
        g = build(params)
        perm = list(range(n))
        rnd.shuffle(perm)
        specs2 = [(perm[s], perm[t], c) for (s, t, c) in specs]
        values2 = None
        if values is not None:
            values2 = [None] * n
            for v in range(n):
                values2[perm[v]] = values[v]
        g2 = DiGraph(n, specs2, values=values2)
        a, a2 = equitable_partition(g), equitable_partition(g2)
        assert [a2[perm[v]] for v in range(n)] == a


# ---------------------------------------------------------------------- #
# memoization is invisible in whole documents
# ---------------------------------------------------------------------- #

def _document_bytes(results) -> bytes:
    """A canonical byte serialization of a table document."""
    return json.dumps(
        [
            {
                "model": r.model.value,
                "knowledge": r.knowledge.value,
                "dynamic": r.dynamic,
                "label": r.label(),
                "consistent": r.consistent,
                "details": r.details,
                "manifest": r.manifest.to_dict() if r.manifest else None,
            }
            for r in results
        ],
        sort_keys=True,
    ).encode("utf-8")


class TestMemoizedDocumentsByteIdentical:
    @settings(max_examples=2, deadline=None)
    @given(st.integers(min_value=0, max_value=1))
    def test_table1_sequential(self, seed):
        clear_memos()
        memoized = _document_bytes(reproduce_table1(n=4, seed=seed, parallel=False))
        with memo_disabled():
            plain = _document_bytes(reproduce_table1(n=4, seed=seed, parallel=False))
        assert memoized == plain

    def test_table2_sequential(self):
        clear_memos()
        memoized = _document_bytes(reproduce_table2(n=4, seed=0, parallel=False))
        with memo_disabled():
            plain = _document_bytes(reproduce_table2(n=4, seed=0, parallel=False))
        assert memoized == plain

    @pytest.mark.slow
    def test_table1_parallel_env(self, monkeypatch):
        """REPRO_PARALLEL=1 (each pool worker grows its own caches) must
        produce the same bytes as the unmemoized sequential baseline."""
        clear_memos()
        with memo_disabled():
            baseline = _document_bytes(reproduce_table1(n=4, seed=0, parallel=False))
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        memoized = _document_bytes(reproduce_table1(n=4, seed=0, parallel=None, workers=2))
        assert memoized == baseline

    def test_env_switch_disables_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO", "0")
        from repro.core import memo

        assert not memo.memo_enabled()
        monkeypatch.delenv("REPRO_MEMO")
        assert memo.memo_enabled()
        # os.environ really is the switch (no import-time freeze).
        assert os.environ.get("REPRO_MEMO") is None
