"""Property-based tests for the frequency Push-Sum mass accounting.

The correctness of Algorithm 1 (under the asynchronous-start join
semantics) rests on two conserved quantities per value ω: the ``y``-mass
equals ω's multiplicity from round 0, and the ``z``-mass climbs to
exactly ``n`` (one unit per agent, entering once at join) and stays
there.  Hypothesis sweeps graphs and input vectors.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.core.execution import Execution
from repro.graphs.builders import random_strongly_connected

params = st.tuples(
    st.integers(min_value=2, max_value=7),  # n
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=3),  # distinct values
)


def setup(p):
    n, seed, k = p
    g = random_strongly_connected(n, seed=seed)
    inputs = [i % k for i in range(n)]
    alg = PushSumFrequencyAlgorithm(mode="frequencies")
    return g, inputs, Execution(alg, g, inputs=inputs)


class TestMassAccounting:
    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_y_mass_is_multiplicity(self, p):
        g, inputs, ex = setup(p)
        ex.run(2 * g.n + 4)
        for value in set(inputs):
            y_total = sum(s[1].get(value, (0.0, 0.0))[0] for s in ex.states)
            assert math.isclose(y_total, inputs.count(value), rel_tol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_z_mass_reaches_n_and_conserves(self, p):
        g, inputs, ex = setup(p)
        # After n rounds every agent has joined every instance (awareness
        # floods within the diameter <= n - 1).
        ex.run(g.n + 1)
        for value in set(inputs):
            z_total = sum(s[1].get(value, (0.0, 0.0))[1] for s in ex.states)
            assert math.isclose(z_total, g.n, rel_tol=1e-9)
        # ... and stays exactly conserved afterwards.
        ex.run(5)
        for value in set(inputs):
            z_total = sum(s[1].get(value, (0.0, 0.0))[1] for s in ex.states)
            assert math.isclose(z_total, g.n, rel_tol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_estimates_converge_to_frequencies(self, p):
        g, inputs, ex = setup(p)
        ex.run(60 * g.n)
        for out in ex.outputs():
            assert out is not None
            for value in set(inputs):
                assert math.isclose(
                    out[value], inputs.count(value) / g.n, abs_tol=1e-5
                )

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_normalized_outputs_sum_to_one(self, p):
        g, inputs, ex = setup(p)
        ex.run(g.n + 2)
        for out in ex.outputs():
            if out is not None:
                assert math.isclose(sum(out.values()), 1.0, rel_tol=1e-9)
