"""Quotient execution IS direct execution — Lemma 3.1, operationally.

:class:`~repro.core.engine.quotient.QuotientExecution` simulates the
memoized minimum base and lifts the trajectory fibrewise.  These tests
pin the contract:

* **Bit-identity.**  On graphs where the quotient activates, the lifted
  trajectory equals the direct trajectory round for round — states,
  outputs, round numbers — across all four communication models, traced
  and untraced, and through ``run_batch`` (which CI reruns under
  ``REPRO_PARALLEL=1``).  The algorithms used are order-invariant and
  exact on purpose: the base's delivery-scramble stream is a different
  stream than the full graph's, and the lemma only promises identity up
  to inbox order.
* **Fallback.**  Asymmetric random graphs (trivial base), dynamic
  networks, the ``OUTPUT_PORT_AWARE`` model, and fibrations that do not
  preserve outdegrees all fall back to direct execution — same
  trajectory, ``quotient_active == False``, a named fallback reason.
* **Snapshots.**  A quotient run checkpoints base states plus fibration
  classes (codec "2"), resumes bit-identically, and refuses cross-mode
  restores.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GossipAlgorithm
from repro.core.agent import OutdegreeAlgorithm, OutputPortAlgorithm
from repro.core.engine.quotient import (
    QuotientExecution,
    clear_quotient_stats,
    default_quotient_ratio,
    quotient_enabled_by_env,
    quotient_stats,
)
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.graphs.builders import (
    bidirectional_ring,
    complete_graph,
    de_bruijn_graph,
    directed_ring,
    hypercube,
    random_strongly_connected,
    star_graph,
    torus,
)

ROUNDS = 4


class SymmetricGossip(GossipAlgorithm):
    """Gossip under the SYMMETRIC model (set union — order-invariant)."""

    model = CommunicationModel.SYMMETRIC


class ExactOutdegree(OutdegreeAlgorithm):
    """Order-invariant, exact-arithmetic OUTDEGREE_AWARE algorithm.

    State = (frozenset of values seen, frozenset of outdegrees seen);
    transitions are unions, so inbox order cannot matter and every value
    is an exact int — a float accumulator would forgive nothing and
    prove nothing.
    """

    def initial_state(self, input_value):
        return (frozenset([input_value]), frozenset())

    def message(self, state, outdegree):
        return (state[0], state[1] | {outdegree})

    def transition(self, state, received):
        values, degrees = state[0], state[1]
        for (vals, degs) in received:
            values |= vals
            degrees |= degs
        return (values, degrees)

    def output(self, state):
        return (state[0], state[1])


class PortGossip(OutputPortAlgorithm):
    """OUTPUT_PORT_AWARE set-flooding — quotient must always fall back."""

    def initial_state(self, input_value):
        return frozenset([input_value])

    def messages(self, state, outdegree):
        return [state | {("port", port)} for port in range(outdegree)]

    def transition(self, state, received):
        for msg in received:
            state |= msg
        return state

    def output(self, state):
        return state


def transitive_graph(family: str, size_index: int):
    """A vertex-transitive graph from one of the paper's stock families."""
    if family == "ring":
        return bidirectional_ring(3 + size_index)
    if family == "directed-ring":
        return directed_ring(3 + size_index)
    if family == "torus":
        return torus(2 + size_index, 3)
    if family == "hypercube":
        return hypercube(2 + size_index % 3)
    if family == "complete":
        return complete_graph(3 + size_index)
    return de_bruijn_graph(2, 2 + size_index % 3)


FAMILIES = ["ring", "directed-ring", "torus", "hypercube", "complete", "de-bruijn"]

transitive_params = st.tuples(
    st.sampled_from(FAMILIES),
    st.integers(min_value=0, max_value=4),  # size index
    st.integers(min_value=0, max_value=100),  # input value
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),  # scramble
)


def assert_bit_identical(algorithm_factory, network, inputs, scramble, *,
                         expect_active, tracer_on_quotient=False):
    """Step a quotient run and a direct run in lockstep; compare everything."""
    quotient = Execution(
        algorithm_factory(), network, inputs=inputs,
        scramble_seed=scramble, quotient=True,
    )
    direct = Execution(
        algorithm_factory(), network, inputs=inputs, scramble_seed=scramble
    )
    assert isinstance(quotient, QuotientExecution)
    assert quotient.quotient_active == expect_active
    if expect_active:
        assert quotient.base_n < network.n
    if tracer_on_quotient:
        from repro.core.engine.trace import Tracer

        quotient.attach(Tracer())
        direct.attach(Tracer())
    for _ in range(ROUNDS):
        quotient.step()
        direct.step()
        assert quotient.round_number == direct.round_number
        assert quotient.states == direct.states
        assert quotient.outputs() == direct.outputs()
        assert quotient.unanimous_output() == direct.unanimous_output()
    return quotient


class TestBitIdentityTransitive:
    """Constant inputs on vertex-transitive graphs: the quotient activates
    (the minimum base is a single vertex) and the trajectory lifts
    bit-for-bit, for every model that can lift at all."""

    @settings(max_examples=25, deadline=None)
    @given(transitive_params)
    def test_broadcast(self, p):
        family, size, value, scramble = p
        g = transitive_graph(family, size)
        assert_bit_identical(
            lambda: GossipAlgorithm(max), g, [value] * g.n, scramble,
            expect_active=True,
        )

    @settings(max_examples=15, deadline=None)
    @given(transitive_params)
    def test_symmetric(self, p):
        family, size, value, scramble = p
        if family in ("directed-ring", "de-bruijn"):
            family = "ring"  # SYMMETRIC needs a symmetric network
        g = transitive_graph(family, size)
        assert_bit_identical(
            lambda: SymmetricGossip(max), g, [value] * g.n, scramble,
            expect_active=True,
        )

    @settings(max_examples=15, deadline=None)
    @given(transitive_params)
    def test_outdegree(self, p):
        family, size, value, scramble = p
        if family == "de-bruijn":
            # De Bruijn graphs are not vertex-transitive: their base is
            # nontrivial and does not preserve outdegrees (that fallback
            # has its own test on the star graph below).
            family = "torus"
        g = transitive_graph(family, size)
        # Vertex-transitive graphs are out-regular, so the one-vertex
        # base preserves the outdegree and the quotient activates.
        assert_bit_identical(
            lambda: ExactOutdegree(), g, [value] * g.n, scramble,
            expect_active=True,
        )

    @settings(max_examples=10, deadline=None)
    @given(transitive_params)
    def test_output_ports_fall_back(self, p):
        family, size, value, scramble = p
        g = transitive_graph(family, size)
        execution = assert_bit_identical(
            lambda: PortGossip(), g, [value] * g.n, scramble,
            expect_active=False,
        )
        assert execution.quotient_fallback_reason == "output-port-model"

    @settings(max_examples=10, deadline=None)
    @given(transitive_params)
    def test_traced_runs_stay_identical(self, p):
        family, size, value, scramble = p
        g = transitive_graph(family, size)
        assert_bit_identical(
            lambda: GossipAlgorithm(max), g, [value] * g.n, scramble,
            expect_active=True, tracer_on_quotient=True,
        )


class TestBitIdentityRefinedBase:
    """Fibrewise-constant-but-not-constant inputs: the refined base
    (valued by the initial configuration) still activates."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=4),   # period
        st.integers(min_value=2, max_value=4),   # repetitions
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
    )
    def test_periodic_ring_inputs(self, period, reps, scramble):
        n = period * reps
        g = bidirectional_ring(n)
        inputs = [(v % period) * 10 + 1 for v in range(n)]
        quotient = assert_bit_identical(
            lambda: GossipAlgorithm(max), g, inputs, scramble, expect_active=True
        )
        assert quotient.base_n == period


class TestFallbacks:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=10_000),
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
    )
    def test_asymmetric_graphs_fall_back_bit_identically(self, n, seed, scramble):
        g = random_strongly_connected(n, seed=seed)
        execution = assert_bit_identical(
            lambda: GossipAlgorithm(max), g, list(range(n)), scramble,
            expect_active=False,
        )
        assert execution.quotient_fallback_reason in (
            "trivial-base",
            "base-too-large",
            "inputs-not-fibrewise-constant",
        )

    def test_dynamic_network_falls_back(self):
        from repro.dynamics.generators import random_dynamic_strongly_connected

        dyn = random_dynamic_strongly_connected(5, seed=3)
        execution = Execution(
            GossipAlgorithm(max), dyn, inputs=[1] * 5, quotient=True
        )
        assert not execution.quotient_active
        assert execution.quotient_fallback_reason == "dynamic-network"
        direct = Execution(
            GossipAlgorithm(max),
            random_dynamic_strongly_connected(5, seed=3),
            inputs=[1] * 5,
        )
        execution.run(ROUNDS)
        direct.run(ROUNDS)
        assert execution.states == direct.states

    def test_outdegree_not_preserved_falls_back(self):
        # The star's base merges all leaves; the hub's outdegree (n-1
        # leaves) does not survive into the two-vertex base, so any
        # outdegree-aware run must fall back — and still agree with the
        # direct run.
        g = star_graph(6)
        execution = assert_bit_identical(
            lambda: ExactOutdegree(), g, [3] * g.n, None, expect_active=False
        )
        assert execution.quotient_fallback_reason == "outdegree-not-preserved"
        # ...while a broadcast run on the same star activates fine.
        broadcast = Execution(
            GossipAlgorithm(max), g, inputs=[3] * g.n, quotient=True
        )
        assert broadcast.quotient_active and broadcast.base_n == 2

    def test_ratio_knob(self, monkeypatch):
        g = bidirectional_ring(6)
        tight = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6,
            quotient=True, quotient_ratio=0.2,
        )
        assert tight.quotient_active  # base.n/n = 1/6 <= 0.2
        stingy = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6,
            quotient=True, quotient_ratio=0.01,
        )
        assert not stingy.quotient_active
        assert stingy.quotient_fallback_reason == "base-too-large"
        monkeypatch.setenv("REPRO_QUOTIENT_RATIO", "0.01")
        assert default_quotient_ratio() == 0.01
        env_stingy = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6, quotient=True
        )
        assert not env_stingy.quotient_active

    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUOTIENT", raising=False)
        assert not quotient_enabled_by_env()
        monkeypatch.setenv("REPRO_QUOTIENT", "1")
        assert quotient_enabled_by_env()

    def test_model_violation_falls_back_then_direct_raises(self):
        g = bidirectional_ring(4, self_loops=False)
        execution = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 4, quotient=True
        )
        assert not execution.quotient_active
        assert execution.quotient_fallback_reason == "model-violation"
        with pytest.raises(ValueError):
            execution.step()


class TestCounters:
    def test_activations_fallbacks_lifts(self):
        clear_quotient_stats()
        g = hypercube(3)
        execution = Execution(
            GossipAlgorithm(max), g, inputs=[2] * g.n, quotient=True
        )
        execution.run(2)
        _ = execution.states  # forces one lazy lift
        Execution(
            GossipAlgorithm(max),
            random_strongly_connected(6, seed=1),
            inputs=list(range(6)),
            quotient=True,
        )
        stats = quotient_stats()
        assert stats["activations"] == 1
        assert stats["fallbacks"] == 1
        assert stats["lifts"] == 1
        assert sum(stats["fallback_reasons"].values()) == 1

    def test_one_bit_model_is_a_checked_fallback(self):
        """REPRO_QUOTIENT=1 (or quotient=True) with a one-bit algorithm
        must never activate — the model is not outdegree-message-
        preserving — and the refusal lands in the fallback counters."""
        from repro.algorithms.onebit import OneBitFloodingAlgorithm

        clear_quotient_stats()
        g = hypercube(3)  # vertex-transitive: every other gate would pass
        execution = Execution(
            OneBitFloodingAlgorithm(), g, inputs=[1] * g.n, quotient=True
        )
        assert not execution.quotient_active
        assert execution.quotient_fallback_reason == "model-not-message-preserving"
        execution.run(2)
        stats = quotient_stats()
        assert stats["activations"] == 0
        assert stats["fallbacks"] == 1
        assert stats["fallback_reasons"] == {"model-not-message-preserving": 1}

    def test_publish_metrics_delta(self):
        from repro.core.engine.trace import MetricsRegistry
        from repro.core.engine.quotient import publish_quotient_metrics

        baseline = quotient_stats()
        g = hypercube(2)
        Execution(GossipAlgorithm(max), g, inputs=[1] * g.n, quotient=True)
        registry = MetricsRegistry()
        publish_quotient_metrics(registry, baseline)
        assert registry.counter("quotient_activations").value == 1


class TestBatchAndParallel:
    """run_batch(quotient=True) equals run_batch(quotient=False); under
    REPRO_PARALLEL=1 (CI) the same assertion exercises the pool path."""

    def test_run_batch_quotient_matches_direct(self):
        from repro.core.engine.batch import BatchJob, run_batch

        jobs = [
            BatchJob(
                algorithm=GossipAlgorithm(max),
                network=transitive_graph(family, 1),
                inputs=[7] * transitive_graph(family, 1).n,
                runner="rounds",
                rounds=ROUNDS,
                label=family,
            )
            for family in FAMILIES
        ]
        accelerated = run_batch(jobs, quotient=True)
        plain = run_batch(jobs, quotient=False)
        for fast, slow in zip(accelerated, plain):
            assert fast.outputs == slow.outputs
            assert fast.label == slow.label

    def test_job_level_quotient_wins_over_batch_level(self):
        from repro.core.engine.batch import BatchJob, run_batch

        g = hypercube(3)
        job = BatchJob(
            algorithm=GossipAlgorithm(max),
            network=g,
            inputs=[1] * g.n,
            rounds=2,
            quotient=False,
        )
        [result] = run_batch([job], quotient=True, parallel=False)
        assert not getattr(result.execution, "quotient_active", False)

    def test_bandwidth_sweep_quotient_curves_equal(self):
        from repro.analysis.bandwidth import bandwidth_sweep

        specs = [
            (lambda: GossipAlgorithm(max), lambda: hypercube(3), [5] * 8, 3),
            (lambda: GossipAlgorithm(max), lambda: bidirectional_ring(6), [2] * 6, 3),
        ]
        assert bandwidth_sweep(specs, quotient=True) == bandwidth_sweep(
            specs, quotient=False
        )


class TestQuotientSnapshots:
    def _run(self, rounds, quotient=True):
        g = torus(3, 3)
        return Execution(
            GossipAlgorithm(min), g, inputs=[4] * g.n,
            scramble_seed=11, quotient=quotient,
        ).run(rounds)

    def test_snapshot_records_base_and_classes(self):
        from repro.store.snapshot import snapshot_execution

        execution = self._run(3)
        assert execution.quotient_active
        snapshot = snapshot_execution(execution)
        assert snapshot.quotient is not None
        assert snapshot.quotient["base_n"] == execution.base_n
        assert snapshot.quotient["classes"] == list(
            execution.minimum_base.classes
        )
        assert snapshot.n == execution.n
        assert len(snapshot.states()) == execution.base_n

    def test_resume_is_bit_identical_including_snapshot_bytes(self):
        from repro.store.snapshot import resume_execution, snapshot_execution
        from repro.store.snapshot import Snapshot

        interrupted = self._run(3)
        blob = snapshot_execution(interrupted).to_bytes()
        resumed = resume_execution(
            Snapshot.from_bytes(blob), GossipAlgorithm(min), torus(3, 3)
        )
        assert isinstance(resumed, QuotientExecution) and resumed.quotient_active
        resumed.run(ROUNDS)
        uninterrupted = self._run(3 + ROUNDS)
        assert resumed.states == uninterrupted.states
        assert (
            snapshot_execution(resumed).to_bytes()
            == snapshot_execution(uninterrupted).to_bytes()
        )

    def test_cross_mode_restores_refused(self):
        from repro.store.snapshot import SnapshotError, restore_execution, snapshot_execution

        quotient_run = self._run(2)
        # quotient=False hands back a plain Execution (no quotient façade).
        direct_run = self._run(2, quotient=False)
        assert not getattr(direct_run, "quotient_active", False)
        with pytest.raises(SnapshotError):
            restore_execution(direct_run, snapshot_execution(quotient_run))
        with pytest.raises(SnapshotError):
            restore_execution(quotient_run, snapshot_execution(direct_run))

    def test_adopt_partition_pins_finer_fibration(self):
        g = bidirectional_ring(6)
        execution = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6, quotient=True
        )
        assert execution.base_n == 1
        execution.adopt_partition([0, 1, 2, 0, 1, 2])
        assert execution.base_n == 3
        direct = Execution(GossipAlgorithm(max), g, inputs=[1] * 6)
        execution.run(ROUNDS)
        direct.run(ROUNDS)
        assert execution.states == direct.states

    def test_adopt_partition_rejects_inequitable(self):
        g = bidirectional_ring(6)
        execution = Execution(
            GossipAlgorithm(max), g, inputs=[1] * 6, quotient=True
        )
        with pytest.raises(ValueError):
            execution.adopt_partition([0, 0, 0, 0, 0, 1])
