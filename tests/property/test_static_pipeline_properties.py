"""End-to-end property: Theorem 4.1's algorithm is correct on *random* networks.

The strongest statement the library can make: for randomly drawn
strongly-connected (or symmetric) graphs and random input vectors, the
full static pipeline — views, base extraction, fibre solving,
reconstruction — computes the exact average in every enriched model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.frequency_static import StaticFunctionAlgorithm
from repro.algorithms.multiset_static import known_size_algorithm
from repro.core.convergence import run_until_stable
from repro.core.execution import Execution
from repro.core.models import CommunicationModel as CM
from repro.functions.library import AVERAGE, SUM
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.lists(st.integers(min_value=-3, max_value=3), min_size=7, max_size=7),
)


class TestTheorem41EndToEnd:
    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_outdegree_model(self, p):
        n, seed, values = p
        g = random_strongly_connected(n, seed=seed)
        inputs = values[:n]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.OUTDEGREE_AWARE)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 10 * n + 20, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_symmetric_model(self, p):
        n, seed, values = p
        g = random_symmetric_connected(n, seed=seed)
        inputs = values[:n]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.SYMMETRIC)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 10 * n + 20, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_port_model(self, p):
        n, seed, values = p
        g = random_strongly_connected(n, seed=seed)
        inputs = values[:n]
        alg = StaticFunctionAlgorithm(AVERAGE, CM.OUTPUT_PORT_AWARE)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 10 * n + 20, patience=4, target=AVERAGE(inputs)
        )
        assert report.converged

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_corollary_43_sum_with_known_n(self, p):
        n, seed, values = p
        g = random_strongly_connected(n, seed=seed)
        inputs = values[:n]
        alg = known_size_algorithm(SUM, CM.OUTDEGREE_AWARE, n=n)
        report = run_until_stable(
            Execution(alg, g, inputs=inputs), 10 * n + 20, patience=4, target=SUM(inputs)
        )
        assert report.converged
