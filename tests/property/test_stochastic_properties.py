"""Property-based tests for the stochastic-matrix layer (§5.2–5.3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.linalg.stochastic import (
    alpha_safety,
    backward_product,
    dobrushin_coefficient,
    is_column_stochastic,
    is_row_stochastic,
    metropolis_matrix,
    push_sum_matrix,
    seminorm_spread,
)

params = st.tuples(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)


class TestPushSumMatrixProperties:
    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_column_stochastic_on_any_graph(self, p):
        n, seed = p
        a = push_sum_matrix(random_strongly_connected(n, seed=seed))
        assert is_column_stochastic(a)

    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_alpha_safety_one_over_n(self, p):
        n, seed = p
        a = push_sum_matrix(random_strongly_connected(n, seed=seed))
        assert alpha_safety(a) >= 1 / n - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(params, st.integers(min_value=1, max_value=5))
    def test_products_preserve_column_stochasticity(self, p, k):
        n, seed = p
        mats = [
            push_sum_matrix(random_strongly_connected(n, seed=seed + i))
            for i in range(k)
        ]
        assert is_column_stochastic(backward_product(mats))

    @settings(max_examples=25, deadline=None)
    @given(params)
    def test_mass_invariant(self, p):
        n, seed = p
        a = push_sum_matrix(random_strongly_connected(n, seed=seed))
        v = np.linspace(-3, 7, n)
        assert float((a @ v).sum()) == float(v.sum()) or abs((a @ v).sum() - v.sum()) < 1e-9


class TestMetropolisProperties:
    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_doubly_stochastic_symmetric(self, p):
        n, seed = p
        w = metropolis_matrix(random_symmetric_connected(n, seed=seed))
        assert is_row_stochastic(w)
        assert is_column_stochastic(w)
        assert np.allclose(w, w.T)

    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_contraction_toward_average(self, p):
        n, seed = p
        w = metropolis_matrix(random_symmetric_connected(n, seed=seed))
        rng = np.random.default_rng(seed)
        x = rng.random(n) * 10
        assert seminorm_spread(w @ x) <= seminorm_spread(x) + 1e-12
        assert float((w @ x).mean()) - float(x.mean()) < 1e-9


class TestDobrushinProperties:
    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_range_and_contraction(self, p):
        n, seed = p
        rng = np.random.default_rng(seed)
        mat = rng.random((n, n)) + 1e-3
        mat /= mat.sum(axis=1, keepdims=True)
        delta = dobrushin_coefficient(mat)
        assert 0.0 <= delta <= 1.0
        x = rng.random(n) * 5
        assert seminorm_spread(mat @ x) <= delta * seminorm_spread(x) + 1e-9
