"""Property tests for the tracing layer's no-interference contract.

Two families of properties:

1. **Bit-identity.**  Tracing must be a pure read: an execution with a
   :class:`~repro.core.engine.trace.Tracer` attached takes exactly the
   trajectory of its untraced twin — same states, outputs, convergence
   reports, and scramble schedule — in all four communication models, on
   static and dynamic networks, sequentially and across the process
   pool.  Order-sensitive recording algorithms are used so any extra RNG
   draw or delivery-order change is fatal, not forgiven.

2. **Byte-accounting agreement.**  The tracer charges delivered payloads
   with :func:`repro.analysis.bandwidth.payload_units` from the *inbox*
   side; :class:`~repro.core.engine.instrumentation.BandwidthObserver`
   and a sender-side re-derivation from the delivery plan charge the
   same units along independent code paths.  Pinning them elementwise
   keeps the two accountings from drifting apart.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.push_sum import PushSumAlgorithm
from repro.analysis.bandwidth import payload_units, traced_bytes_curve
from repro.core.convergence import run_until_stable
from repro.core.engine.batch import BatchJob, run_batch
from repro.core.engine.instrumentation import BandwidthObserver, StateDigestObserver
from repro.core.engine.trace import Tracer, attach_tracers, merged_metrics, trace_execution
from repro.core.execution import Execution
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from tests.property.test_engine_equivalence import (
    RecordBroadcast,
    RecordOutdegree,
    RecordPorts,
    RecordSymmetric,
)

params = st.tuples(
    st.integers(min_value=2, max_value=7),  # n
    st.integers(min_value=0, max_value=10_000),  # graph seed
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),  # scramble
)

ROUNDS = 4

MODELS = [
    (RecordBroadcast, random_strongly_connected),
    (RecordSymmetric, random_symmetric_connected),
    (RecordOutdegree, random_strongly_connected),
    (RecordPorts, random_strongly_connected),
]


def assert_traced_is_untraced(algorithm_factory, network, inputs, scramble_seed):
    plain = Execution(
        algorithm_factory(), network, inputs=inputs, scramble_seed=scramble_seed
    )
    traced = Execution(
        algorithm_factory(), network, inputs=inputs, scramble_seed=scramble_seed
    )
    digests = StateDigestObserver()
    plain.attach(digests)  # digests only read the record: the reference run
    tracer = trace_execution(traced)
    for _ in range(ROUNDS):
        plain.step()
        traced.step()
        assert plain.states == traced.states
    assert plain.outputs() == traced.outputs()
    assert [e.fields["digest"] for e in tracer.round_events()] == digests.digests


class TestTracingIsInvisibleStatic:
    @settings(max_examples=12, deadline=None)
    @given(params, st.sampled_from(range(len(MODELS))))
    def test_all_models(self, p, model_index):
        n, seed, scramble = p
        algorithm_factory, builder = MODELS[model_index]
        g = builder(n, seed=seed)
        assert_traced_is_untraced(algorithm_factory, g, list(range(n)), scramble)


class TestTracingIsInvisibleDynamic:
    @settings(max_examples=10, deadline=None)
    @given(params)
    def test_broadcast_on_periodic_graphs(self, p):
        n, seed, scramble = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + k) for k in range(3)]
        )
        assert_traced_is_untraced(RecordBroadcast, dyn, list(range(n)), scramble)

    @settings(max_examples=10, deadline=None)
    @given(params)
    def test_outdegree_on_periodic_graphs(self, p):
        n, seed, scramble = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + k) for k in range(3)]
        )
        assert_traced_is_untraced(RecordOutdegree, dyn, list(range(n)), scramble)


class TestTracingIsInvisibleToDetectors:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=3, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_run_until_stable_report_identical(self, n, seed):
        def report(traced):
            execution = Execution(
                GossipAlgorithm(max),
                random_strongly_connected(n, seed=seed),
                inputs=[(v * 31 + seed) % 17 for v in range(n)],
            )
            if traced:
                trace_execution(execution)
            return run_until_stable(execution, 3 * n, patience=3)

        plain, traced = report(False), report(True)
        assert plain == traced  # dataclass equality: every field, incl. trace


def _record_jobs(n, seed):
    """One job per communication model, order-sensitive, scrambled."""
    jobs = []
    for k, (algorithm_factory, builder) in enumerate(MODELS):
        jobs.append(
            BatchJob(
                algorithm_factory(),
                builder(n, seed=seed + k),
                inputs=list(range(n)),
                scramble_seed=seed,
                rounds=ROUNDS,
                label=f"model-{k}",
            )
        )
    return jobs


class TestTracingIsInvisibleParallel:
    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=0, max_value=1_000),
    )
    def test_parallel_traced_matches_sequential_untraced(self, n, seed):
        untraced = run_batch(_record_jobs(n, seed))

        jobs = _record_jobs(n, seed)
        tracers = attach_tracers(jobs)
        traced = run_batch(jobs, parallel=True, workers=2)

        for plain, result in zip(untraced, traced):
            assert plain.outputs == result.outputs
        # The shipped-back tracers recorded ROUNDS rounds per job…
        for tracer in tracers:
            assert len(tracer.deterministic_rounds()) == ROUNDS
        # …and their deterministic projections match a sequential re-run.
        jobs_seq = _record_jobs(n, seed)
        tracers_seq = attach_tracers(jobs_seq)
        run_batch(jobs_seq)
        assert [t.deterministic_rounds() for t in tracers] == [
            t.deterministic_rounds() for t in tracers_seq
        ]
        assert merged_metrics(tracers).as_dict(deterministic_only=True) == (
            merged_metrics(tracers_seq).as_dict(deterministic_only=True)
        )


# --------------------------------------------------------------------- #
# byte accounting
# --------------------------------------------------------------------- #

class SenderSideBytes:
    """Re-derives delivered bytes from the *sender's* side of the plan —
    an independent accounting the tracer's inbox-side totals must match."""

    def __init__(self) -> None:
        self.totals = []
        self.peaks = []

    def on_round(self, record) -> None:
        outgoing = record.outgoing
        total = 0
        peak = 0
        if outgoing and isinstance(outgoing[0], list):  # port model
            for sources, ports in zip(record.plan.sources, record.plan.source_ports):
                for s, p in zip(sources, ports):
                    u = payload_units(outgoing[s][p])
                    total += u
                    peak = max(peak, u)
        else:
            for sources in record.plan.sources:
                for s in sources:
                    u = payload_units(outgoing[s])
                    total += u
                    peak = max(peak, u)
        self.totals.append(total)
        self.peaks.append(peak)


class TestByteAccountingAgrees:
    @settings(max_examples=12, deadline=None)
    @given(params, st.sampled_from(range(len(MODELS))))
    def test_tracer_matches_sender_side_accounting(self, p, model_index):
        n, seed, scramble = p
        algorithm_factory, builder = MODELS[model_index]
        execution = Execution(
            algorithm_factory(),
            builder(n, seed=seed),
            inputs=list(range(n)),
            scramble_seed=scramble,
        )
        sender_side = SenderSideBytes()
        execution.attach(sender_side)
        tracer = trace_execution(execution, rounds=ROUNDS)
        events = tracer.round_events()
        assert [e.fields["bytes_delivered"] for e in events] == sender_side.totals
        assert [e.fields["bytes_peak"] for e in events] == sender_side.peaks

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_peak_matches_bandwidth_observer(self, n, seed):
        """Every vertex has a self-loop, so the largest *sent* payload
        (BandwidthObserver) is also the largest *delivered* one (Tracer)."""
        def execution():
            return Execution(
                GossipAlgorithm(),
                random_strongly_connected(n, seed=seed),
                inputs=[(v * 13 + seed) % 5 for v in range(n)],
            )

        ex = execution()
        observer = BandwidthObserver()
        ex.attach(observer)
        ex.run(ROUNDS)
        curve = traced_bytes_curve(execution(), ROUNDS)
        assert [peak for (_total, peak) in curve] == observer.peaks

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_registry_total_is_curve_sum(self, n, seed):
        execution = Execution(
            PushSumAlgorithm(),
            random_strongly_connected(n, seed=seed),
            inputs=[float(v + 1) for v in range(n)],
        )
        tracer = trace_execution(execution, rounds=ROUNDS)
        per_round = [e.fields["bytes_delivered"] for e in tracer.round_events()]
        assert tracer.registry.counter("bytes_delivered").value == sum(per_round)
