"""Vector execution IS object execution — the faithfulness contract.

:class:`~repro.core.engine.vector.VectorExecution` runs whole rounds as
numpy gather/scatter kernels.  These properties pin its contract against
the object engine across all four communication models, static and
dynamic networks, traced and untraced runs, and both batch backends:

* **Exact kernels** (gossip's boolean OR-flooding, the custom port-aware
  kernel below) must reproduce the object trajectory *bit for bit* —
  states, outputs, digests, the full deterministic round projection.
* **Float kernels** (Push-Sum and variants, Metropolis, per-value
  frequency Push-Sum) may associate sums differently than the object
  engine's left-to-right folds, so trajectories agree within
  :func:`~repro.analysis.impossibility.outputs_match` tolerance while
  the discrete trace fields (messages, bytes) stay exactly equal.
* The backend draws nothing from the scramble RNG, so enabling it can
  never perturb an interleaved object execution.

``REPRO_VECTOR=0`` and ``=1`` runs of this file exercise both defaults
through ``run_batch``; CI additionally reruns it under
``REPRO_PARALLEL=1``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GossipAlgorithm,
    MetropolisAlgorithm,
    PushSumAlgorithm,
)
from repro.algorithms.push_sum import VectorPushSumAlgorithm
from repro.algorithms.push_sum_frequency import PushSumFrequencyAlgorithm
from repro.analysis.impossibility import outputs_match
from repro.core.agent import OutputPortAlgorithm
from repro.core.engine import BatchJob, run_batch
from repro.core.engine.trace import Tracer, trace_execution
from repro.core.engine.vector import (
    VectorKernel,
    kernel_for,
    register_kernel,
)
from repro.core.execution import Execution
from repro.core.models import CommunicationModel
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import (
    bidirectional_ring,
    random_strongly_connected,
    random_symmetric_connected,
)

ROUNDS = 6

seeds = st.integers(min_value=0, max_value=40)
sizes = st.integers(min_value=2, max_value=9)


class SymmetricGossip(GossipAlgorithm):
    """Gossip under SYMMETRIC — same round function, stricter network
    precondition, so the registered gossip kernel still applies."""

    model = CommunicationModel.SYMMETRIC


class PortShiftMax(OutputPortAlgorithm):
    """Exact OUTPUT_PORT_AWARE algorithm with a test-registered kernel.

    Port ``p`` carries ``state + p`` (the ports genuinely matter), and
    the transition folds by ``max`` — associative, order-invariant,
    integer-exact.  Registered below via the public
    :func:`register_kernel` extension point, demonstrating that the
    fourth model vectorizes the same way the built-ins do.
    """

    def initial_state(self, input_value):
        return int(input_value)

    def messages(self, state, outdegree):
        return [state + p for p in range(outdegree)]

    def transition(self, state, received):
        return max(state, max(received))

    def output(self, state):
        return state


class PortShiftMaxKernel(VectorKernel):
    def pack(self, states):
        return np.array([int(s) for s in states], dtype=np.int64)

    def unpack(self, packed):
        return [int(x) for x in packed]

    def step(self, packed, csr):
        received = packed.copy()
        np.maximum.at(received, csr.targets, packed[csr.sources] + csr.ports)
        return received


register_kernel(PortShiftMax)(PortShiftMaxKernel)


def _dynamic(n, seed, symmetric=False):
    build = random_symmetric_connected if symmetric else random_strongly_connected
    return PeriodicDynamicGraph([build(n, seed=seed + i) for i in range(3)])


def _pair(algorithm_factory, network, inputs, **kwargs):
    obj = Execution(algorithm_factory(), network, inputs=inputs, **kwargs)
    vec = Execution(algorithm_factory(), network, inputs=inputs, vector=True, **kwargs)
    return obj, vec


# ---------------------------------------------------------------------- #
# exact kernels: bit-for-bit across models
# ---------------------------------------------------------------------- #

class TestExactBitIdentity:
    @settings(max_examples=12)
    @given(seed=seeds, n=sizes)
    def test_broadcast_gossip_static(self, seed, n):
        g = random_strongly_connected(n, seed=seed)
        obj, vec = _pair(lambda: GossipAlgorithm(max), g, list(range(n)))
        assert vec.vector_active
        for _ in range(ROUNDS):
            obj.step()
            vec.step()
            assert vec.states == obj.states

    @settings(max_examples=10)
    @given(seed=seeds, n=sizes)
    def test_broadcast_gossip_dynamic(self, seed, n):
        dyn = _dynamic(n, seed)
        obj, vec = _pair(lambda: GossipAlgorithm(max), dyn, list(range(n)))
        assert vec.vector_active
        obj.run(ROUNDS)
        vec.run(ROUNDS)
        assert vec.states == obj.states
        assert vec.outputs() == obj.outputs()

    @settings(max_examples=10)
    @given(seed=seeds, n=st.integers(min_value=3, max_value=8))
    def test_symmetric_gossip(self, seed, n):
        g = random_symmetric_connected(n, seed=seed)
        obj, vec = _pair(lambda: SymmetricGossip(max), g, list(range(n)))
        assert vec.vector_active
        obj.run(ROUNDS)
        vec.run(ROUNDS)
        assert vec.states == obj.states

    @settings(max_examples=10)
    @given(seed=seeds, n=st.integers(min_value=3, max_value=8))
    def test_symmetric_gossip_dynamic(self, seed, n):
        dyn = _dynamic(n, seed, symmetric=True)
        obj, vec = _pair(lambda: SymmetricGossip(max), dyn, list(range(n)))
        assert vec.vector_active
        obj.run(ROUNDS)
        vec.run(ROUNDS)
        assert vec.states == obj.states

    @settings(max_examples=12)
    @given(seed=seeds, n=sizes)
    def test_output_port_aware_custom_kernel(self, seed, n):
        # OUTPUT_PORT_AWARE is static-only (§2.2).
        g = random_strongly_connected(n, seed=seed)
        obj, vec = _pair(PortShiftMax, g, list(range(n)))
        assert vec.vector_active
        for _ in range(ROUNDS):
            obj.step()
            vec.step()
            assert vec.states == obj.states

    def test_port_kernel_resolves_via_registry(self):
        assert isinstance(kernel_for(PortShiftMax()), PortShiftMaxKernel)


# ---------------------------------------------------------------------- #
# float kernels: tolerance on values, exact on structure
# ---------------------------------------------------------------------- #

FLOAT_FAMILIES = [
    ("push-sum", lambda n: (lambda: PushSumAlgorithm()), lambda n: [float(v + 1) for v in range(n)]),
    (
        "vector-push-sum",
        lambda n: (lambda: VectorPushSumAlgorithm()),
        lambda n: [(float(v), float(n - v)) for v in range(n)],
    ),
    ("metropolis", lambda n: (lambda: MetropolisAlgorithm()), lambda n: [float(v * v) for v in range(n)]),
    (
        "frequency",
        lambda n: (lambda: PushSumFrequencyAlgorithm(mode="frequencies")),
        lambda n: [v % 3 for v in range(n)],
    ),
]


class TestFloatTolerance:
    @pytest.mark.parametrize("name,make,make_inputs", FLOAT_FAMILIES)
    @settings(max_examples=8)
    @given(seed=seeds, n=st.integers(min_value=3, max_value=9))
    def test_static(self, name, make, make_inputs, seed, n):
        g = (
            random_symmetric_connected(n, seed=seed)
            if name == "metropolis"
            else random_strongly_connected(n, seed=seed)
        )
        obj, vec = _pair(make(n), g, make_inputs(n))
        assert vec.vector_active, vec.vector_fallback_reason
        obj.run(ROUNDS)
        vec.run(ROUNDS)
        assert outputs_match(vec.outputs(), obj.outputs())

    @pytest.mark.parametrize("name,make,make_inputs", FLOAT_FAMILIES)
    @settings(max_examples=6)
    @given(seed=seeds, n=st.integers(min_value=3, max_value=8))
    def test_dynamic(self, name, make, make_inputs, seed, n):
        dyn = _dynamic(n, seed, symmetric=name == "metropolis")
        obj, vec = _pair(make(n), dyn, make_inputs(n))
        assert vec.vector_active, vec.vector_fallback_reason
        obj.run(ROUNDS)
        vec.run(ROUNDS)
        assert outputs_match(vec.outputs(), obj.outputs())


# ---------------------------------------------------------------------- #
# traced runs
# ---------------------------------------------------------------------- #

class TestTraced:
    @settings(max_examples=8)
    @given(seed=seeds, n=sizes)
    def test_exact_trace_is_identical(self, seed, n):
        g = random_strongly_connected(n, seed=seed)
        obj, vec = _pair(lambda: GossipAlgorithm(max), g, list(range(n)))
        t_obj = trace_execution(obj, rounds=ROUNDS)
        t_vec = trace_execution(vec, rounds=ROUNDS)
        assert t_vec.deterministic_rounds() == t_obj.deterministic_rounds()

    @settings(max_examples=6)
    @given(seed=seeds, n=st.integers(min_value=3, max_value=8))
    def test_float_trace_discrete_fields_exact(self, seed, n):
        g = random_strongly_connected(n, seed=seed)
        obj, vec = _pair(
            lambda: PushSumAlgorithm(), g, [float(v + 1) for v in range(n)]
        )
        t_obj = trace_execution(obj, rounds=ROUNDS)
        t_vec = trace_execution(vec, rounds=ROUNDS)
        for e_obj, e_vec in zip(t_obj.round_events(), t_vec.round_events()):
            assert e_vec.round == e_obj.round
            assert e_vec.fields["messages"] == e_obj.fields["messages"]
            assert e_vec.fields["bytes_delivered"] == e_obj.fields["bytes_delivered"]
            assert e_vec.fields["bytes_peak"] == e_obj.fields["bytes_peak"]
            # Residuals differ only by float association.
            assert outputs_match(
                e_vec.fields["residual"], e_obj.fields["residual"], abs_tol=1e-9
            )

    def test_traced_and_untraced_vector_agree(self):
        g = random_strongly_connected(7, seed=5)
        inputs = list(range(7))
        plain = Execution(GossipAlgorithm(max), g, inputs=inputs, vector=True)
        traced = Execution(GossipAlgorithm(max), g, inputs=inputs, vector=True)
        trace_execution(traced, rounds=ROUNDS)
        plain.run(ROUNDS)
        assert plain.states == traced.states


# ---------------------------------------------------------------------- #
# batch backends
# ---------------------------------------------------------------------- #

def _batch_jobs(n=6, seed=4):
    g = random_strongly_connected(n, seed=seed)
    dyn = _dynamic(n, seed)
    return [
        BatchJob(GossipAlgorithm(max), g, inputs=list(range(n)), rounds=ROUNDS),
        BatchJob(
            PushSumAlgorithm(), dyn, inputs=[float(v + 1) for v in range(n)], rounds=ROUNDS
        ),
    ]


class TestBatchBackends:
    def test_run_batch_vector_override(self):
        base = [r.outputs for r in run_batch(_batch_jobs(), vector=False)]
        vec = [r.outputs for r in run_batch(_batch_jobs(), vector=True)]
        assert outputs_match(vec, base)

    def test_env_default_respected(self, monkeypatch):
        from repro.core.engine.vector import clear_vector_stats, vector_stats

        monkeypatch.setenv("REPRO_VECTOR", "1")
        clear_vector_stats()
        run_batch(_batch_jobs())
        assert vector_stats()["activations"] == 2
        monkeypatch.setenv("REPRO_VECTOR", "0")
        clear_vector_stats()
        run_batch(_batch_jobs())
        assert vector_stats()["activations"] == 0

    def test_parallel_backend_identical(self, monkeypatch):
        """Vector jobs through the process pool (REPRO_PARALLEL path)
        return the same outputs as the sequential object path."""
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        sequential = [
            r.outputs for r in run_batch(_batch_jobs(), parallel=False, vector=False)
        ]
        pooled = [
            r.outputs
            for r in run_batch(_batch_jobs(), parallel=True, workers=2, vector=True)
        ]
        assert outputs_match(pooled, sequential)


# ---------------------------------------------------------------------- #
# scramble-stream independence
# ---------------------------------------------------------------------- #

class TestScrambleIndependence:
    def test_vector_never_consumes_scramble_stream(self):
        """Two object executions interleaved with a vector one stay on
        the trajectory they would take alone — the vector path draws
        nothing from any RNG."""
        g = bidirectional_ring(6)
        inputs = [3, 1, 4, 1, 5, 9]
        alone = Execution(GossipAlgorithm(max), g, inputs=inputs).run(ROUNDS)
        interleaved = Execution(GossipAlgorithm(max), g, inputs=inputs)
        vec = Execution(GossipAlgorithm(max), g, inputs=inputs, vector=True)
        for _ in range(ROUNDS):
            vec.step()
            interleaved.step()
        assert interleaved.states == alone.states
        assert vec.states == alone.states
