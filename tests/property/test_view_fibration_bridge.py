"""The bridge between views and fibrations, as a hypothesis property.

The Lifting lemma at the view level: a vertex of ``G`` and its image in
the minimum base ``B`` have *identical* in-views at every depth (when
computed in a shared intern table).  This is the structural fact that
makes "same fibre ⟺ same view ⟺ same behavior" tick, and it ties
:mod:`repro.graphs.views` to :mod:`repro.fibrations` in one assertion.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fibrations.minimum_base import minimum_base
from repro.graphs.builders import random_strongly_connected, random_symmetric_connected
from repro.graphs.views import ViewBuilder, all_views

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=8),  # depth
)


def build(p):
    n, seed, symmetric, k, depth = p
    builder = random_symmetric_connected if symmetric else random_strongly_connected
    g = builder(n, seed=seed).with_values([i % k for i in range(n)])
    return g, depth


class TestViewsLiftThroughFibrations:
    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_vertex_views_equal_base_views(self, p):
        g, depth = build(p)
        mb = minimum_base(g)
        shared = ViewBuilder()
        g_views = all_views(g, depth, builder=shared)
        b_views = all_views(mb.base, depth, builder=shared)
        for v in g.vertices():
            assert g_views[v] is b_views[mb.classes[v]]

    @settings(max_examples=40, deadline=None)
    @given(params)
    def test_same_fibre_iff_same_deep_view(self, p):
        g, _depth = build(p)
        mb = minimum_base(g)
        views = all_views(g, g.n + 1)
        for v in g.vertices():
            for w in g.vertices():
                assert (mb.classes[v] == mb.classes[w]) == (views[v] is views[w])
