"""Property-based tests for views, interning, and base extraction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.minimum_base_alg import SymmetricViewAlgorithm, extract_base
from repro.core.execution import Execution
from repro.fibrations.minimum_base import equitable_partition, minimum_base
from repro.graphs.builders import random_symmetric_connected
from repro.graphs.views import ViewBuilder, all_views, dag_size

params = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
)


def build(p):
    n, seed, k = p
    g = random_symmetric_connected(n, seed=seed)
    return g.with_values([i % k for i in range(n)])


class TestViewEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_deep_views_induce_equitable_partition(self, p):
        # Depth-n views classify vertices exactly like the coarsest
        # equitable partition (the Boldi–Vigna equivalence).
        g = build(p)
        views = all_views(g, depth=g.n + 1)
        view_classes = {}
        for v in g.vertices():
            view_classes.setdefault(views[v].uid, []).append(v)
        truth = {}
        for v, c in enumerate(equitable_partition(g)):
            truth.setdefault(c, []).append(v)
        assert sorted(map(sorted, view_classes.values())) == sorted(
            map(sorted, truth.values())
        )

    @settings(max_examples=30, deadline=None)
    @given(params, st.integers(min_value=0, max_value=6))
    def test_dag_size_linear(self, p, depth):
        g = build(p)
        b = ViewBuilder()
        views = all_views(g, depth=depth, builder=b)
        for v in views:
            assert dag_size(v) <= g.n * (depth + 1)

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_interning_shares_across_vertices(self, p):
        g = build(p)
        b = ViewBuilder()
        all_views(g, depth=8, builder=b)
        # Total intern table is linear in n · depth, not exponential.
        assert len(b) <= g.n * 9 + g.n


class TestDistributedExtraction:
    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_extraction_eventually_matches_centralized(self, p):
        g = build(p)
        truth = minimum_base(g)
        alg = SymmetricViewAlgorithm()
        ex = Execution(alg, g, inputs=list(g.values))
        ex.run(2 * (g.n + g.n) + 2)
        for state in ex.states:
            base = extract_base(state[1], alg.builder)
            assert base is not None
            assert base.n == truth.base.n
            assert sorted(map(repr, base.values)) == sorted(map(repr, truth.base.values))
