"""Golden-config regression tests: the DSL reproduces the hard-coded paths.

``configs/table1.json`` and ``configs/table2.json`` must compile to
documents that are *byte-identical* to what the pre-DSL machinery emits
— :func:`~repro.analysis.tables.reproduce_table1/2` assembled through
:func:`~repro.store.jobs.table_document` — sequentially and with the
process pool forced on.  If the DSL ever drifts from the hard-coded
reproduction, these tests are the tripwire.
"""

import functools
import os

import pytest

from repro.scenarios import document_bytes, load_scenario, run_scenario

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
CONFIGS = os.path.join(REPO_ROOT, "configs")


def config_path(name: str) -> str:
    return os.path.join(CONFIGS, name)


@functools.lru_cache(maxsize=None)
def hard_coded_bytes(table: int) -> bytes:
    """The pre-DSL reproduction, assembled exactly as the durable table
    jobs assemble it — the byte-level golden reference."""
    from repro.analysis.tables import (
        cell_to_payload,
        reproduce_table1,
        reproduce_table2,
    )
    from repro.store.jobs import table_document

    if table == 1:
        cells = [cell_to_payload(r) for r in reproduce_table1(6, 0)]
        return document_bytes(table_document("table1", 6, 0, cells))
    cells = [cell_to_payload(r) for r in reproduce_table2(5, 0)]
    return document_bytes(table_document("table2", 5, 0, cells))


@pytest.mark.parametrize("table,name", [(1, "table1.json"), (2, "table2.json")])
class TestGoldenConfigs:
    def test_sequential_byte_identity(self, table, name, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        document = run_scenario(load_scenario(config_path(name)))
        assert document_bytes(document) == hard_coded_bytes(table)

    def test_parallel_byte_identity(self, table, name, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        document = run_scenario(load_scenario(config_path(name)))
        assert document_bytes(document) == hard_coded_bytes(table)

    def test_document_shape_matches_table_jobs(self, table, name):
        scenario = load_scenario(config_path(name))
        assert scenario.kind == "table"
        assert scenario.table == table
        assert scenario.n == (6 if table == 1 else 5)
        assert scenario.seed == 0
        document = run_scenario(scenario)
        assert document["kind"] == f"table{table}"
        assert document["parameters"] == {"n": scenario.n, "seed": 0}
        assert document["summary"]["verdict"] == "PASS"


class TestShippedGridConfig:
    def test_onebit_counting_is_deterministic_and_consistent(self):
        scenario = load_scenario(config_path("onebit_counting.json"))
        first = document_bytes(run_scenario(scenario))
        second = document_bytes(run_scenario(scenario))
        assert first == second
        document = run_scenario(scenario)
        assert document["summary"] == {
            "rows": 40,
            "consistent": 40,
            "verdict": "PASS",
        }
        # The grid genuinely separates the probes: OR-flooding converges
        # everywhere, the indegree census only on complete graphs.
        by_probe = {}
        for row in document["rows"]:
            by_probe.setdefault(row["probe"], []).append(row)
        assert all(row["converged"] for row in by_probe["or-flood"])
        assert all(
            row["converged"] == (row["graph"] == "complete")
            for row in by_probe["census"]
        )
