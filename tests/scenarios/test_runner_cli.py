"""The scenario runner, the ``run`` CLI, and the durable scenario job.

Pins the DSL's execution-side contracts:

* one config, one document — byte-identical across the object engine,
  the vector fallback, the quotient fallback, and the process pool;
* the result store serves warm rows without changing a byte;
* ``python -m repro run`` exits 0/1 on PASS/FAIL verdicts and 2 on
  config errors, with a one-line diagnostic instead of a traceback;
* ``scenario`` jobs run through the crash-safe queue with per-unit
  progress, and land on an engine-flag-independent document key.
"""

import dataclasses
import json
import os

import pytest

from repro.__main__ import main
from repro.scenarios import (
    document_bytes,
    format_scenario_document,
    grid_units,
    load_scenario,
    run_scenario,
    validate_scenario,
)
from repro.scenarios.schema import EngineFlags

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
ONEBIT_CONFIG = os.path.join(REPO_ROOT, "configs", "onebit_counting.json")


def small_grid(tmp_path, **overrides):
    raw = {
        "scenario": "small",
        "kind": "grid",
        "model": "one-bit broadcast",
        "rounds": 8,
        "seeds": [0, 1],
        "graphs": [
            {"family": "complete", "sizes": [4]},
            {"family": "ring", "sizes": [5]},
        ],
        "probes": ["or-flood", "census"],
        "inputs": "alternating",
    }
    raw.update(overrides)
    config = tmp_path / "small.json"
    config.write_text(json.dumps(raw))
    return load_scenario(config)


class TestEngineModeByteIdentity:
    def test_all_modes_emit_identical_bytes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        scenario = small_grid(tmp_path)
        base = document_bytes(run_scenario(scenario))
        for flags in (
            EngineFlags(vector=True),
            EngineFlags(quotient=True),
            EngineFlags(parallel=True, workers=2),
        ):
            variant = dataclasses.replace(scenario, engine=flags)
            assert document_bytes(run_scenario(variant)) == base, flags

    def test_identity_excludes_engine_flags(self, tmp_path):
        scenario = small_grid(tmp_path)
        forced = dataclasses.replace(scenario, engine=EngineFlags(vector=True))
        assert forced.identity() == scenario.identity()
        assert forced.normalized() != scenario.normalized()

    def test_normalized_round_trips_through_validation(self, tmp_path):
        scenario = small_grid(
            tmp_path,
            engine={"parallel": True, "workers": 2},
            output={"title": "round trip"},
        )
        again = validate_scenario(scenario.normalized(), source="round-trip")
        assert again.identity() == scenario.identity()
        assert again.engine == scenario.engine
        assert again.title == scenario.title


class TestStore:
    def test_cold_and_warm_runs_identical(self, tmp_path, monkeypatch):
        from repro.store.cache import ResultStore

        # Parallel workers open their own ResultStore by root, so this
        # store object's hit/miss counters only observe the sequential
        # path; byte-identity across engine modes is asserted elsewhere.
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        scenario = small_grid(tmp_path)
        direct = document_bytes(run_scenario(scenario))
        store = ResultStore(tmp_path / "store")
        cold = document_bytes(run_scenario(scenario, store=store))
        warm = document_bytes(run_scenario(scenario, store=store))
        assert cold == direct
        assert warm == direct
        assert store.hits >= len(grid_units(scenario))  # warm run hit disk

    def test_row_keys_shared_across_engine_modes(self, tmp_path, monkeypatch):
        from repro.store.cache import ResultStore

        monkeypatch.delenv("REPRO_PARALLEL", raising=False)  # observable counters
        scenario = small_grid(tmp_path)
        store = ResultStore(tmp_path / "store")
        run_scenario(scenario, store=store)
        puts = store.puts
        vectored = dataclasses.replace(scenario, engine=EngineFlags(vector=True))
        run_scenario(vectored, store=store)
        assert store.puts == puts  # every row served, none recomputed


class TestRunCli:
    def test_pass_exit_code_and_stdout_bytes(self, tmp_path, capsysbinary):
        scenario = small_grid(tmp_path)
        expected = document_bytes(run_scenario(scenario))
        assert main(["run", str(tmp_path / "small.json")]) == 0
        assert capsysbinary.readouterr().out == expected

    def test_out_flag_writes_the_document(self, tmp_path, capsysbinary):
        scenario = small_grid(tmp_path)
        expected = document_bytes(run_scenario(scenario))
        out = tmp_path / "doc.json"
        assert main(["run", str(tmp_path / "small.json"), "--out", str(out)]) == 0
        assert out.read_bytes() == expected

    def test_pretty_renders_the_grid(self, tmp_path, capsysbinary):
        small_grid(tmp_path, output={"title": "tiny grid"})
        assert main(["run", str(tmp_path / "small.json"), "--pretty"]) == 0
        out = capsysbinary.readouterr().out.decode("utf-8")
        assert "tiny grid" in out
        assert "or-flood" in out

    def test_fail_verdict_exits_one(self, tmp_path):
        # One round is not enough for the flood to cross a 5-ring, so the
        # or-flood oracle disagrees and the document's verdict is FAIL.
        small_grid(
            tmp_path,
            rounds=1,
            seeds=[0],
            graphs=[{"family": "ring", "sizes": [5]}],
            probes=["or-flood"],
        )
        assert main(["run", str(tmp_path / "small.json")]) == 1

    def test_config_error_exits_two_without_traceback(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text(json.dumps({"scenario": "x", "kind": "grid"}))
        assert main(["run", str(config)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "model" in err  # the first missing required key
        assert "Traceback" not in err

    def test_malformed_file_exits_two(self, tmp_path, capsys):
        config = tmp_path / "broken.json"
        config.write_text("{]")
        assert main(["run", str(config)]) == 2
        assert "malformed JSON" in capsys.readouterr().err

    def test_format_scenario_document_handles_tables(self):
        scenario = load_scenario(os.path.join(REPO_ROOT, "configs", "table1.json"))
        rendered = format_scenario_document(run_scenario(scenario))
        assert "Table 1 — static strongly connected networks" in rendered


class TestScenarioJob:
    def test_job_end_to_end_with_progress(self, tmp_path):
        from repro.store.jobs import document_key, open_queue, open_store, run_worker

        scenario = small_grid(tmp_path)
        queue = open_queue(tmp_path / "root")
        store = open_store(tmp_path / "root")
        record = queue.submit("scenario", {"config": scenario.normalized()})
        assert run_worker(tmp_path / "root", queue=queue, store=store) == 1
        finished = queue.get(record.id)
        assert finished.status == "done"
        total = len(grid_units(scenario))
        assert finished.progress == {"units_done": total, "units_total": total}
        assert finished.result_key == document_key(
            "scenario", {"config": scenario.identity()}
        )
        doc = store.get(finished.result_key)
        assert document_bytes(doc) == document_bytes(run_scenario(scenario))

    def test_submit_flags_ride_beside_the_config(self, tmp_path):
        from repro.store.jobs import document_key, open_queue, open_store, run_worker

        scenario = small_grid(tmp_path)
        queue = open_queue(tmp_path / "root")
        store = open_store(tmp_path / "root")
        record = queue.submit(
            "scenario", {"config": scenario.normalized(), "vector": True}
        )
        run_worker(tmp_path / "root", queue=queue, store=store)
        finished = queue.get(record.id)
        assert finished.status == "done"
        # Engine flags stay out of the document key: the accelerated
        # submission lands exactly where a plain one would.
        assert finished.result_key == document_key(
            "scenario", {"config": scenario.identity()}
        )
        doc = store.get(finished.result_key)
        assert document_bytes(doc) == document_bytes(run_scenario(scenario))

    def test_invalid_config_parks_the_job(self, tmp_path):
        from repro.store.jobs import open_queue, open_store, run_worker

        queue = open_queue(tmp_path / "root")
        record = queue.submit(
            "scenario", {"config": {"scenario": "x", "kind": "nope"}}, max_attempts=1
        )
        run_worker(tmp_path / "root", queue=queue, store=open_store(tmp_path / "root"))
        parked = queue.get(record.id)
        assert parked.status == "failed"
        assert "kind" in parked.error

    def test_cli_submit_copies_the_config(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert (
            main(
                [
                    "store",
                    "--root",
                    str(root),
                    "submit",
                    "scenario",
                    "--config",
                    ONEBIT_CONFIG,
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "scenario"
        assert record["params"]["config"]["scenario"] == "onebit-counting"
        assert record["params"]["config"]["model"] == "one-bit broadcast"
