"""Every way a config can be wrong raises a typed, pinpointed error.

The contract under test: any invalid scenario document raises
:class:`~repro.scenarios.errors.ScenarioSchemaError` whose message names
the offending key and the source file; any unreadable or malformed file
raises :class:`~repro.scenarios.errors.ScenarioFileError` with the path
— and ``python -m repro run`` turns both into a one-line stderr
diagnostic with exit code 2, never a traceback.
"""

import pytest

from repro.scenarios import (
    ScenarioError,
    ScenarioFileError,
    ScenarioSchemaError,
    load_scenario,
    parse_scenario_text,
    validate_scenario,
)


def good_grid():
    return {
        "scenario": "probe",
        "kind": "grid",
        "model": "one-bit broadcast",
        "rounds": 8,
        "seeds": [0],
        "graphs": [{"family": "ring", "sizes": [4]}],
        "probes": ["or-flood"],
        "inputs": "alternating",
    }


def good_table():
    return {"scenario": "t1", "kind": "table", "table": 1, "seed": 0}


def fails_on(raw, key):
    with pytest.raises(ScenarioSchemaError) as excinfo:
        validate_scenario(raw, source="bad.json")
    message = str(excinfo.value)
    assert "bad.json" in message
    assert repr(key) in message
    return message


class TestSchemaViolations:
    def test_root_must_be_object(self):
        fails_on([1, 2], "<root>")

    def test_missing_scenario_name(self):
        raw = good_table()
        del raw["scenario"]
        fails_on(raw, "scenario")

    def test_unknown_kind(self):
        raw = good_table()
        raw["kind"] = "benchmark"
        fails_on(raw, "kind")

    def test_unknown_top_level_key(self):
        raw = good_table()
        raw["temperature"] = 300
        assert "not part of the scenario schema" in fails_on(raw, "temperature")

    def test_cross_kind_key_named_as_such(self):
        raw = good_table()
        raw["rounds"] = 5
        assert "not a 'table'-kind key" in fails_on(raw, "rounds")

    def test_unknown_model(self):
        raw = good_grid()
        raw["model"] = "two-bit broadcast"
        message = fails_on(raw, "model")
        assert "one-bit broadcast" in message  # lists the known models

    def test_unknown_knowledge(self):
        raw = good_grid()
        raw["knowledge"] = "oracle"
        fails_on(raw, "knowledge")

    def test_missing_seeds(self):
        raw = good_grid()
        del raw["seeds"]
        assert "required key is missing" in fails_on(raw, "seeds")

    def test_empty_seeds(self):
        raw = good_grid()
        raw["seeds"] = []
        fails_on(raw, "seeds")

    def test_negative_seed_pinpoints_index(self):
        raw = good_grid()
        raw["seeds"] = [0, -3]
        fails_on(raw, "seeds[1]")

    def test_negative_rounds(self):
        raw = good_grid()
        raw["rounds"] = -5
        assert "positive integer" in fails_on(raw, "rounds")

    def test_boolean_is_not_an_integer(self):
        raw = good_grid()
        raw["rounds"] = True  # JSON true must not pass as 1
        fails_on(raw, "rounds")

    def test_unknown_graph_family(self):
        raw = good_grid()
        raw["graphs"] = [{"family": "petersen", "sizes": [10]}]
        fails_on(raw, "graphs[0].family")

    def test_undersized_graph(self):
        raw = good_grid()
        raw["graphs"] = [{"family": "ring", "sizes": [1]}]
        fails_on(raw, "graphs[0].sizes[0]")

    def test_hypercube_size_must_be_power_of_two(self):
        raw = good_grid()
        raw["graphs"] = [{"family": "hypercube", "sizes": [6]}]
        fails_on(raw, "graphs[0].sizes[0]")

    def test_unknown_probe(self):
        raw = good_grid()
        raw["probes"] = ["leader-election"]
        fails_on(raw, "probes[0]")

    def test_probe_model_mismatch(self):
        raw = good_grid()
        raw["probes"] = ["gossip-max"]  # a simple-broadcast probe
        assert "runs under" in fails_on(raw, "probes[0]")

    def test_unknown_input_pattern(self):
        raw = good_grid()
        raw["inputs"] = "fibonacci"
        fails_on(raw, "inputs")

    def test_table_out_of_range(self):
        raw = good_table()
        raw["table"] = 3
        fails_on(raw, "table")

    def test_table_missing_seed(self):
        raw = good_table()
        del raw["seed"]
        fails_on(raw, "seed")

    def test_unknown_output_key(self):
        raw = good_table()
        raw["output"] = {"format": "csv"}
        fails_on(raw, "output.format")


class TestEngineFlagViolations:
    def test_unknown_engine_flag(self):
        raw = good_table()
        raw["engine"] = {"turbo": True}
        fails_on(raw, "engine.turbo")

    def test_engine_flag_must_be_boolean(self):
        raw = good_table()
        raw["engine"] = {"vector": "yes"}
        fails_on(raw, "engine.vector")

    def test_workers_must_be_positive(self):
        raw = good_table()
        raw["engine"] = {"parallel": True, "workers": 0}
        fails_on(raw, "engine.workers")

    def test_quotient_and_vector_cannot_both_force_on(self):
        raw = good_table()
        raw["engine"] = {"quotient": True, "vector": True}
        assert "cannot both be forced on" in fails_on(raw, "engine")

    def test_workers_without_parallel_rejected(self):
        raw = good_table()
        raw["engine"] = {"parallel": False, "workers": 4}
        fails_on(raw, "engine.workers")


class TestFileErrors:
    def test_malformed_json_is_typed(self):
        with pytest.raises(ScenarioFileError) as excinfo:
            parse_scenario_text("{not json", "json", "broken.json")
        assert "broken.json" in str(excinfo.value)
        assert "malformed JSON" in str(excinfo.value)

    def test_malformed_toml_is_typed(self):
        try:
            import tomllib  # noqa: F401 - probing the gate
        except ImportError:
            with pytest.raises(ScenarioFileError, match="Python 3.11"):
                parse_scenario_text("x = [", "toml", "broken.toml")
        else:
            with pytest.raises(ScenarioFileError, match="malformed TOML"):
                parse_scenario_text("x = [", "toml", "broken.toml")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioFileError, match="cannot read config"):
            load_scenario(tmp_path / "nowhere.json")

    def test_unsupported_suffix(self, tmp_path):
        config = tmp_path / "scenario.yaml"
        config.write_text("{}")
        with pytest.raises(ScenarioFileError, match="unsupported config suffix"):
            load_scenario(config)

    def test_malformed_file_names_its_path(self, tmp_path):
        config = tmp_path / "broken.json"
        config.write_text("{]")
        with pytest.raises(ScenarioFileError) as excinfo:
            load_scenario(config)
        assert str(config) in str(excinfo.value)

    def test_all_errors_share_one_catchable_base(self, tmp_path):
        with pytest.raises(ScenarioError):
            load_scenario(tmp_path / "nowhere.json")
        with pytest.raises(ScenarioError):
            validate_scenario({"scenario": "x", "kind": "nope"})


class TestToml:
    def test_valid_toml_loads_when_tomllib_present(self, tmp_path):
        pytest.importorskip("tomllib")
        config = tmp_path / "t1.toml"
        config.write_text(
            'scenario = "t1"\nkind = "table"\ntable = 1\nseed = 0\n'
        )
        scenario = load_scenario(config)
        assert scenario.kind == "table"
        assert scenario.table == 1
        assert scenario.n == 6  # the paper default fills in
