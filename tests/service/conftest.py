"""Fixtures for the experiment-service tests.

The service is asyncio; the tests (and :class:`ServiceClient`) are
blocking.  :class:`ServiceThread` runs one service on its own event loop
in a daemon thread — bound to port 0, so suites parallelize — and gives
tests a threadsafe window into that loop (``pending_tasks`` is how the
SSE-disconnect test proves a vanished client leaves nothing behind).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.service.app import ExperimentService
from repro.service.client import ServiceClient


class ServiceThread:
    """One :class:`ExperimentService` on a dedicated loop + thread."""

    def __init__(self, root, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.service = ExperimentService(root, **kwargs)
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start(port=0))
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True, name="service")
        self.thread.start()
        assert started.wait(10), "service failed to start"

    @property
    def host(self):
        return self.service.host

    @property
    def port(self):
        return self.service.port

    def client(self, timeout: float = 30.0) -> ServiceClient:
        return ServiceClient(self.host, self.port, timeout=timeout)

    # -- loop introspection --------------------------------------------- #

    async def _pending(self):
        current = asyncio.current_task()
        return [t for t in asyncio.all_tasks() if t is not current and not t.done()]

    def pending_tasks(self):
        """Unfinished tasks on the service loop (connection handlers)."""
        future = asyncio.run_coroutine_threadsafe(self._pending(), self.loop)
        return future.result(10)

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """True once no connection-handler tasks remain on the loop."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.pending_tasks():
                return True
            time.sleep(0.02)
        return False

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.service.close(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def service_thread(tmp_path):
    """A running service over a fresh scheduler root."""
    thread = ServiceThread(tmp_path / "root", poll_interval=0.05)
    yield thread
    thread.stop()
