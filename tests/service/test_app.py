"""The service's routes, driven over real sockets.

Everything here goes through a live listener on an ephemeral port and
the blocking :class:`ServiceClient` (or a raw ``http.client`` connection
when the test needs to see status codes and headers the client
normalizes away).
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service.client import ServiceError
from repro.store.cache import result_key
from repro.store.jobs import document_key, open_queue, open_store, run_worker


def raw_request(thread, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(thread.host, thread.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(
            (k.lower(), v) for k, v in response.getheaders()
        ), response.read()
    finally:
        conn.close()


class TestBasicRoutes:
    def test_healthz(self, service_thread):
        with service_thread.client() as client:
            payload = client.healthz()
        assert payload["status"] == "ok"
        assert "requests" in payload["counters"]
        assert payload["orchestrator"] is None  # no embedded orchestrator here

    def test_store_stats_matches_cli_schema(self, service_thread):
        with service_thread.client() as client:
            payload = client.store_stats()
        # Same shape as `python -m repro store status --json`.
        from repro.store.jobs import store_status_payload

        direct = store_status_payload(
            open_queue(service_thread.service.root),
            open_store(service_thread.service.root),
        )
        assert sorted(payload) == sorted(direct)
        assert payload["engine_version"] == direct["engine_version"]

    def test_unknown_route_is_json_404(self, service_thread):
        status, headers, body = raw_request(service_thread, "GET", "/nope")
        assert status == 404
        assert headers["content-type"].startswith("application/json")
        error = json.loads(body)["error"]
        assert error["status"] == 404
        assert "/nope" in error["message"]

    def test_wrong_method_is_405_with_allow(self, service_thread):
        status, headers, body = raw_request(service_thread, "DELETE", "/healthz")
        assert status == 405
        assert headers["allow"] == "GET"
        assert json.loads(body)["error"]["status"] == 405

    def test_oversized_head_is_431(self, service_thread):
        status, _, body = raw_request(
            service_thread, "GET", "/healthz", headers={"X-Pad": "a" * 20_000}
        )
        assert status == 431
        assert json.loads(body)["error"]["status"] == 431

    def test_keep_alive_and_pipelining_over_one_socket(self, service_thread):
        import socket as socketlib

        with socketlib.create_connection(
            (service_thread.host, service_thread.port), timeout=10
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n\r\n" b"GET /healthz HTTP/1.1\r\n\r\n"
            )
            received = b""
            while received.count(b"HTTP/1.1 200 OK") < 2:
                chunk = sock.recv(65536)
                assert chunk, "connection closed before both responses"
                received += chunk
        assert received.count(b"Connection: keep-alive") == 2


class TestSubmission:
    def test_invalid_json_body_is_400(self, service_thread):
        status, _, body = raw_request(
            service_thread, "POST", "/v1/runs", body=b"{not json"
        )
        assert status == 400

    def test_non_object_body_is_422(self, service_thread):
        status, _, _ = raw_request(service_thread, "POST", "/v1/runs", body=b"[1]")
        assert status == 422

    def test_unknown_kind_is_422(self, service_thread):
        with service_thread.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "frobnicate"})
        assert excinfo.value.status == 422
        assert "frobnicate" in str(excinfo.value)

    def test_scenario_schema_violation_is_422(self, service_thread):
        with service_thread.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"scenario": "x", "kind": "grid"})  # missing keys
        assert excinfo.value.status == 422

    def test_submit_noop_returns_202_with_links(self, service_thread):
        with service_thread.client() as client:
            record = client.submit({"kind": "noop", "params": {"i": 1}})
        assert record["status"] == "queued"
        assert record["kind"] == "noop"
        assert record["links"]["self"] == f"/v1/runs/{record['id']}"
        assert record["links"]["events"].endswith("/events")
        status, headers, _ = raw_request(
            service_thread,
            "POST",
            "/v1/runs",
            body=json.dumps({"kind": "noop", "params": {"i": 1}}).encode(),
        )
        assert status == 202  # resubmission is idempotent, still queued
        assert headers["location"] == f"/v1/runs/{record['id']}"

    def test_submit_is_303_once_result_is_cached(self, service_thread):
        job = {"kind": "noop", "params": {"i": 7}}
        with service_thread.client() as client:
            first = client.submit(job)
            assert first["status"] == "queued"
            run_worker(service_thread.service.root)  # execute it
            second = client.submit(job)
        assert second["status"] == "cached"
        assert second["result_key"] == document_key("noop", {"i": 7})
        status, headers, _ = raw_request(
            service_thread, "POST", "/v1/runs", body=json.dumps(job).encode()
        )
        assert status == 303
        assert headers["location"] == f"/v1/results/{second['result_key']}"

    def test_run_status_and_404(self, service_thread):
        with service_thread.client() as client:
            record = client.submit({"kind": "noop", "params": {"i": 9}})
            fetched = client.run_status(record["id"])
            assert fetched["status"] == "queued"
            assert fetched["heartbeat_age"] is None  # not leased yet
            run_worker(service_thread.service.root)
            done = client.wait(record["id"], timeout=30)
            assert done["status"] == "done"
            assert done["links"]["result"] == f"/v1/results/{done['result_key']}"
            with pytest.raises(ServiceError) as excinfo:
                client.run_status("no-such-job")
        assert excinfo.value.status == 404


class TestResults:
    def put_one(self, service_thread, payload=None):
        store = open_store(service_thread.service.root)
        key = result_key("demo", {"x": 1})
        store.put(key, payload or {"hello": "world"}, kind="demo", params={"x": 1})
        return store, key

    def test_served_bytes_are_the_entry_bytes(self, service_thread):
        store, key = self.put_one(service_thread)
        with service_thread.client() as client:
            served = client.result_bytes(key)
        with open(store.entry_path(key), "rb") as fh:
            assert served == fh.read()

    def test_etag_and_304(self, service_thread):
        _, key = self.put_one(service_thread)
        status, headers, body = raw_request(service_thread, "GET", f"/v1/results/{key}")
        assert status == 200
        assert headers["etag"] == f'"{key}"'
        assert "immutable" in headers["cache-control"]
        status, headers, body = raw_request(
            service_thread,
            "GET",
            f"/v1/results/{key}",
            headers={"If-None-Match": f'"{key}"'},
        )
        assert status == 304
        assert headers["etag"] == f'"{key}"'
        assert body == b""
        with service_thread.client() as client:
            assert client.result_bytes(key, etag=key) is None  # revalidated

    def test_if_none_match_variants(self, service_thread):
        _, key = self.put_one(service_thread)
        for header in ("*", f'W/"{key}"', f'"other", "{key}"'):
            status, _, _ = raw_request(
                service_thread,
                "GET",
                f"/v1/results/{key}",
                headers={"If-None-Match": header},
            )
            assert status == 304, header
        status, _, _ = raw_request(
            service_thread,
            "GET",
            f"/v1/results/{key}",
            headers={"If-None-Match": '"mismatch"'},
        )
        assert status == 200

    def test_missing_and_malformed_keys_are_404(self, service_thread):
        with service_thread.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.result_bytes("0" * 32)
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.result_bytes("not-a-key")
            assert excinfo.value.status == 404
        # A conditional request for a missing entry must not 304.
        status, _, _ = raw_request(
            service_thread,
            "GET",
            f"/v1/results/{'0' * 32}",
            headers={"If-None-Match": "*"},
        )
        assert status == 404

    def test_counters_track_serving(self, service_thread):
        _, key = self.put_one(service_thread)
        with service_thread.client() as client:
            client.result_bytes(key)
            client.result_bytes(key, etag=key)
            health = client.healthz()
        assert health["counters"]["results_served"] >= 1
        assert health["counters"]["results_not_modified"] >= 1
