"""The service-facing CLI surfaces: ``store status --json`` and
``store result --raw`` (the shell-side twins of ``GET /v1/store/stats``
and ``GET /v1/results/{key}``)."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.store.jobs import open_queue, open_store


class TestStoreStatusJson:
    def test_matches_the_service_stats_schema(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert main(["store", "--root", str(root), "status", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"engine_version", "queue", "scheduler", "store"}
        assert payload["queue"] == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
        }

    def test_sharded_roots_report_shards(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert (
            main(["store", "--root", str(root), "--shards", "4", "status", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "shards" in payload
        assert len(payload["shards"]) == 4


class TestStoreResultRaw:
    def test_raw_dumps_the_entry_bytes(self, tmp_path, capfdbinary):
        root = tmp_path / "root"
        assert (
            main(["store", "--root", str(root), "submit", "noop", "--param", "i=1"])
            == 0
        )
        assert main(["store", "--root", str(root), "run"]) == 0
        (record,) = open_queue(root).jobs()
        assert record.status == "done" and record.result_key
        capfdbinary.readouterr()  # drop the submit/run chatter
        assert (
            main(["store", "--root", str(root), "result", record.id, "--raw"]) == 0
        )
        raw = capfdbinary.readouterr().out
        store = open_store(root)
        with open(store.entry_path(record.result_key), "rb") as fh:
            assert raw == fh.read()
        # --raw is the HTTP fast path's twin: digest-checked entry bytes,
        # decodable, payload under "payload".
        assert json.loads(raw.decode("utf-8"))["key"] == record.result_key
