"""End-to-end: the service in front of real scenario execution.

The acceptance property of the whole serving layer is byte-identity —
a document fetched over HTTP (store envelope included) carries exactly
the payload a direct in-process :func:`run_scenario` produces.  The
serving layer adds transport, never interpretation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.scenarios import document_bytes, run_scenario, validate_scenario
from repro.store.jobs import run_worker

#: One grid unit: tiny enough for CI, real enough to exercise the engine.
CONFIG = {
    "scenario": "service-e2e",
    "kind": "grid",
    "model": "one-bit broadcast",
    "rounds": 8,
    "seeds": [0],
    "graphs": [{"family": "complete", "sizes": [4]}],
    "probes": ["or-flood"],
    "inputs": "alternating",
}


@pytest.fixture(autouse=True)
def isolated_store_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)


class TestHttpByteIdentity:
    def test_served_document_matches_direct_run(self, service_thread):
        with service_thread.client() as client:
            record = client.submit(CONFIG)
            assert record["status"] == "queued"
            run_worker(service_thread.service.root)
            done = client.wait(record["id"], timeout=60)
            assert done["status"] == "done"
            raw = client.result_bytes(done["result_key"])
        entry = json.loads(raw.decode("utf-8"))
        direct = run_scenario(validate_scenario(CONFIG, source="test"), store=None)
        assert document_bytes(entry["payload"]) == document_bytes(direct)

    def test_traced_run_streams_rounds_and_shares_the_key(self, service_thread):
        root = service_thread.service.root
        with service_thread.client() as client:
            record = client.submit(CONFIG, trace=True)
            assert record["status"] == "queued"
            worker = threading.Thread(target=run_worker, args=(root,), daemon=True)
            worker.start()
            events = list(client.events(record["id"]))
            worker.join(60)
            assert not worker.is_alive()

            traces = [e for e in events if e["event"] == "trace"]
            assert traces, f"no trace events in {[e['event'] for e in events]}"
            for trace in traces:
                assert trace["id"] is not None  # logged → resumable
                assert "round" in trace["data"]
                assert trace["data"]["graph"] == "complete"
            assert [e["event"] for e in events][-1] == "end"

            # The trace flag stays out of the scenario identity: an
            # untraced submission of the same config is already cached.
            second = client.submit(CONFIG)
        assert second["status"] == "cached"
        done = [e for e in events if e["event"] == "end"][0]
        assert second["result_key"] == done["data"]["result_key"]


class TestServeSubprocess:
    def test_embedded_orchestrator_end_to_end(self, tmp_path):
        """``python -m repro serve --port 0 --pools 1``: discover the
        ephemeral port from the announce line, run a scenario over HTTP
        end to end, and verify the served bytes against a direct run."""
        root = tmp_path / "root"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--root",
                str(root),
                "--port",
                "0",
                "--pools",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=dict(os.environ),
            text=True,
        )
        try:
            announce = json.loads(process.stdout.readline())
            assert announce["event"] == "serving"
            assert announce["port"] != 0  # the *bound* port, not the request
            from repro.service.client import ServiceClient

            with ServiceClient(announce["host"], announce["port"], timeout=60) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["orchestrator"] is not None  # embedded pools

                outcome = client.submit(CONFIG)
                if outcome.get("status") == "cached":  # pragma: no cover
                    raw = client.result_bytes(outcome["result_key"])
                else:
                    done = client.wait(outcome["id"], timeout=120)
                    assert done["status"] == "done", done.get("error")
                    raw = client.result_bytes(done["result_key"])
                stats = client.store_stats()
                assert stats["queue"]["done"] >= 1
            entry = json.loads(raw.decode("utf-8"))
            direct = run_scenario(
                validate_scenario(CONFIG, source="test"), store=None
            )
            assert document_bytes(entry["payload"]) == document_bytes(direct)
        finally:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=15)

    def test_sigterm_shuts_down_pool_workers(self, tmp_path):
        """SIGTERM must run the graceful path: the embedded
        orchestrator's fork children exit with the server instead of
        being orphaned (a leaked worker holds inherited stdio pipes
        open, which wedges any parent reading them to EOF)."""
        import time

        root = tmp_path / "root"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--root",
                str(root),
                "--port",
                "0",
                "--pools",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=dict(os.environ),
            text=True,
        )
        try:
            announce = json.loads(process.stdout.readline())
            assert announce["event"] == "serving"
            time.sleep(1.0)  # let the orchestrator pre-warm its pool
            process.terminate()
            assert process.wait(timeout=15) == 0  # graceful, not -SIGTERM
            # The pool worker inherited our pipe handles; communicate()
            # only returns once every holder has exited.  A deadline'd
            # reader thread keeps a regression from hanging the suite.
            reader = threading.Thread(target=process.communicate, daemon=True)
            reader.start()
            reader.join(timeout=15)
            assert not reader.is_alive(), (
                "stdio pipes still open 15s after exit: orphaned workers"
            )
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()
                process.wait(timeout=15)
