"""The HTTP/1.1 layer, byte by byte.

The parser's contract is segment-agnosticism: however the kernel tears
the stream into reads — one byte at a time, several pipelined requests
in one segment — the same requests come out.  These tests drive
:class:`repro.service.http.RequestReader` through a fake stream whose
segmentation the test controls exactly.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    DEFAULT_MAX_HEAD,
    HttpError,
    RequestReader,
    error_response,
    json_response,
    response_bytes,
    sse_comment,
    sse_event,
    sse_headers,
)


class SegmentedStream:
    """A reader whose ``read`` returns exactly the segments it was given
    — the test's handle on TCP fragmentation."""

    def __init__(self, *segments: bytes):
        self._segments = list(segments)

    async def read(self, n: int) -> bytes:
        if not self._segments:
            return b""
        return self._segments.pop(0)


def read_all(*segments: bytes, **kwargs):
    """Parse every request out of the given segmentation."""

    async def drive():
        reader = RequestReader(SegmentedStream(*segments), **kwargs)
        requests = []
        while True:
            request = await reader.read_request()
            if request is None:
                return requests
            requests.append(request)

    return asyncio.run(drive())


def read_one(*segments: bytes, **kwargs):
    (request,) = read_all(*segments, **kwargs)
    return request


class TestRequestParsing:
    def test_simple_get(self):
        request = read_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.version == "HTTP/1.1"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive is True

    def test_one_byte_segments(self):
        """The head and body may arrive one TCP byte at a time."""
        wire = b"POST /v1/runs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        request = read_one(*[wire[i : i + 1] for i in range(len(wire))])
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_segment_split_inside_separator(self):
        """The blank-line separator itself may straddle two segments."""
        request = read_one(b"GET / HTTP/1.1\r\nHost: x\r\n", b"\r\n")
        assert request.path == "/"

    def test_pipelined_requests_in_one_segment(self):
        wire = (
            b"GET /a HTTP/1.1\r\n\r\n"
            b"POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
            b"GET /c HTTP/1.1\r\n\r\n"
        )
        requests = read_all(wire)
        assert [r.path for r in requests] == ["/a", "/b", "/c"]
        assert requests[1].body == b"hi"

    def test_body_split_across_segments(self):
        requests = read_all(
            b"POST /b HTTP/1.1\r\nContent-Length: 6\r\n\r\nab",
            b"cd",
            b"ef",
        )
        assert requests[0].body == b"abcdef"

    def test_query_and_percent_decoding(self):
        request = read_one(b"GET /v1/runs?trace=1&x=a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/runs"
        assert request.query == {"trace": "1", "x": "a b"}

    def test_clean_eof_between_requests_is_none(self):
        assert read_all(b"GET / HTTP/1.1\r\n\r\n") != []
        assert read_all() == []

    def test_http10_defaults_to_close(self):
        request = read_one(b"GET / HTTP/1.0\r\n\r\n")
        assert request.keep_alive is False
        request = read_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive is True

    def test_http11_connection_close(self):
        request = read_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_json_body_helper(self):
        request = read_one(
            b"POST / HTTP/1.1\r\nContent-Length: 13\r\n\r\n" b'{"kind": "x"}'
        )
        assert request.json() == {"kind": "x"}
        bad = read_one(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(HttpError) as excinfo:
            bad.json()
        assert excinfo.value.status == 400


class TestRequestRejection:
    def expect(self, status: int, *segments: bytes, **kwargs) -> HttpError:
        with pytest.raises(HttpError) as excinfo:
            read_all(*segments, **kwargs)
        assert excinfo.value.status == status
        return excinfo.value

    def test_oversized_head_is_431(self):
        huge = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * DEFAULT_MAX_HEAD + b"\r\n\r\n"
        error = self.expect(431, huge)
        assert error.close is True

    def test_oversized_head_in_small_segments_is_431(self):
        huge = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 2048
        self.expect(431, *[huge[i : i + 97] for i in range(0, len(huge), 97)],
                    max_head=1024)

    def test_eof_mid_head_is_400(self):
        self.expect(400, b"GET / HTTP/1.1\r\nHost")

    def test_eof_mid_body_is_400(self):
        self.expect(400, b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_malformed_request_line_is_400(self):
        self.expect(400, b"GET/HTTP/1.1\r\n\r\n")
        self.expect(400, b"GET / HTTP/1.1 extra\r\n\r\n")

    def test_unsupported_version_is_400(self):
        self.expect(400, b"GET / HTTP/2\r\n\r\n")

    def test_non_origin_target_is_400(self):
        self.expect(400, b"GET http://evil/ HTTP/1.1\r\n\r\n")

    def test_malformed_header_is_400(self):
        self.expect(400, b"GET / HTTP/1.1\r\nNo Colon Here\r\n\r\n")
        self.expect(400, b"GET / HTTP/1.1\r\n : empty-name\r\n\r\n")

    def test_bad_content_length_is_400(self):
        self.expect(400, b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        self.expect(400, b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_oversized_body_is_413(self):
        self.expect(
            413,
            b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            max_body=50,
        )

    def test_chunked_transfer_is_501(self):
        self.expect(
            501, b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )


class TestResponseFraming:
    def test_response_bytes_framing(self):
        wire = response_bytes(200, b"hi", headers={"X-Y": "z"})
        head, _, body = wire.partition(b"\r\n\r\n")
        assert body == b"hi"
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "X-Y: z" in lines
        assert "Content-Length: 2" in lines
        assert "Connection: keep-alive" in lines

    def test_close_connection_header(self):
        assert b"Connection: close" in response_bytes(200, b"", keep_alive=False)

    def test_json_response_is_sorted_and_typed(self):
        wire = json_response(200, {"b": 1, "a": 2})
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"Content-Type: application/json" in head
        assert body == b'{\n  "a": 2,\n  "b": 1\n}\n'

    def test_error_response_body_shape(self):
        wire = error_response(HttpError(404, "no such thing"))
        _, _, body = wire.partition(b"\r\n\r\n")
        assert json.loads(body) == {
            "error": {"status": 404, "message": "no such thing"}
        }

    def test_sse_framing(self):
        assert sse_headers().startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: text/event-stream" in sse_headers()
        framed = sse_event({"x": 1}, event="progress", event_id=7)
        assert framed == b'id: 7\nevent: progress\ndata: {"x": 1}\n\n'
        unnumbered = sse_event({"x": 1}, event="snapshot")
        assert not unnumbered.startswith(b"id:")
        assert sse_comment("hi") == b": hi\n\n"
