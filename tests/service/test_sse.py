"""The SSE live feed: ordering, resume, and disconnect hygiene.

These tests drive the stream deterministically by playing the runner's
role themselves: events are appended straight into the job's
:class:`~repro.store.events.JobEventLog` and the job record is moved
through its lifecycle via the queue — no engine, no timing guesses.
"""

from __future__ import annotations

import json
import socket as socketlib
import time

import pytest

from repro.store.events import JobEventLog
from repro.store.jobs import open_queue


def submit_noop(thread, i=1):
    with thread.client() as client:
        record = client.submit({"kind": "noop", "params": {"i": i}})
    return record["id"]


class TestStreaming:
    def test_full_lifecycle_stream(self, service_thread):
        root = service_thread.service.root
        job_id = submit_noop(service_thread)
        log = JobEventLog(root)
        for done in (1, 2, 3):
            log.append(job_id, "progress", {"units_done": done, "units_total": 3})

        client = service_thread.client()
        feed = client.events(job_id)
        first = next(feed)
        assert first["event"] == "snapshot"
        assert first["id"] is None  # synthesized events carry no id
        assert first["data"]["id"] == job_id

        received = [next(feed) for _ in range(3)]
        assert [e["event"] for e in received] == ["progress"] * 3
        assert [e["id"] for e in received] == [1, 2, 3]
        assert [e["data"]["units_done"] for e in received] == [1, 2, 3]

        # Play the worker: claim, log one more unit, complete.
        queue = open_queue(root)
        record = queue.claim()
        assert record is not None and record.id == job_id
        log.append(job_id, "progress", {"units_done": 4, "units_total": 4})
        queue.complete(job_id, result_key=None)

        tail = list(feed)
        kinds = [e["event"] for e in tail]
        # The fourth logged event must arrive (possibly after a status
        # transition), and the stream must finish with a terminal end.
        assert kinds[-1] == "end"
        assert tail[-1]["id"] is None
        assert tail[-1]["data"]["status"] == "done"
        progress = [e for e in tail if e["event"] == "progress"]
        assert [e["id"] for e in progress] == [4]
        client.close()

    def test_resume_replays_no_duplicates(self, service_thread):
        root = service_thread.service.root
        job_id = submit_noop(service_thread, i=2)
        log = JobEventLog(root)
        for done in range(1, 6):
            log.append(job_id, "progress", {"units_done": done, "units_total": 5})

        client = service_thread.client()
        feed = client.events(job_id)
        assert next(feed)["event"] == "snapshot"
        seen = [next(feed) for _ in range(3)]
        assert [e["id"] for e in seen] == [1, 2, 3]
        feed.close()  # client goes away mid-stream

        resumed = client.events(job_id, last_event_id=3)
        assert next(resumed)["event"] == "snapshot"  # no id, never counted
        rest = [next(resumed) for _ in range(2)]
        assert [e["id"] for e in rest] == [4, 5]  # exactly the tail, once
        resumed.close()
        client.close()

    def test_resume_past_end_sees_no_logged_events(self, service_thread):
        root = service_thread.service.root
        job_id = submit_noop(service_thread, i=3)
        log = JobEventLog(root)
        log.append(job_id, "progress", {"units_done": 1, "units_total": 1})
        queue = open_queue(root)
        record = queue.claim()
        queue.complete(record.id, result_key=None)

        client = service_thread.client()
        events = list(client.events(job_id, last_event_id=1))
        client.close()
        assert [e["event"] for e in events if e["id"] is not None] == []
        assert events[-1]["event"] == "end"

    def test_unknown_job_is_404(self, service_thread):
        from repro.service.client import ServiceError

        client = service_thread.client()
        with pytest.raises(ServiceError) as excinfo:
            next(client.events("missing-job"))
        client.close()
        assert excinfo.value.status == 404


class TestDisconnectHygiene:
    def test_disconnect_mid_stream_leaves_no_pending_tasks(self, service_thread):
        job_id = submit_noop(service_thread, i=4)
        sock = socketlib.create_connection(
            (service_thread.host, service_thread.port), timeout=10
        )
        sock.sendall(
            f"GET /v1/runs/{job_id}/events HTTP/1.1\r\n\r\n".encode("latin-1")
        )
        # Wait for the stream to be live (the snapshot event arrives),
        # so the handler is genuinely mid-stream when we vanish.
        received = b""
        while b"event: snapshot" not in received:
            chunk = sock.recv(65536)
            assert chunk, "stream closed before snapshot"
            received += chunk
        assert service_thread.pending_tasks(), "handler should be streaming"
        sock.close()
        # The handler coroutine must unwind promptly — no orphan tasks
        # keep polling a feed nobody is reading.
        assert service_thread.wait_idle(timeout=10), (
            f"pending tasks after disconnect: {service_thread.pending_tasks()}"
        )

    def test_stream_emits_keepalive_comments_while_idle(self, service_thread, tmp_path):
        service_thread.service.keepalive_interval = 0.1
        job_id = submit_noop(service_thread, i=5)
        sock = socketlib.create_connection(
            (service_thread.host, service_thread.port), timeout=10
        )
        sock.sendall(
            f"GET /v1/runs/{job_id}/events HTTP/1.1\r\n\r\n".encode("latin-1")
        )
        received = b""
        deadline = time.monotonic() + 10
        while b": keepalive" not in received and time.monotonic() < deadline:
            chunk = sock.recv(65536)
            if not chunk:
                break
            received += chunk
        sock.close()
        assert b": keepalive" in received
