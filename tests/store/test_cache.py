"""Unit tests for the content-addressed result store and atomic layer."""

import json
import os

import pytest

from repro.core.engine import ENGINE_VERSION
from repro.store.atomic import (
    append_line,
    atomic_write_bytes,
    atomic_write_text,
    sweep_temp_files,
)
from repro.store.cache import (
    ResultStore,
    canonical_params,
    default_store,
    fetch_or_compute,
    resolve_store,
    result_key,
)


class TestAtomic:
    def test_write_and_replace(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_write_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_append_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_line(path, "one")
        append_line(path, "two\n")
        assert path.read_text() == "one\ntwo\n"

    def test_sweep_temp_files(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / ".tmp-orphan").write_text("junk")
        (tmp_path / "sub" / ".tmp-nested").write_text("junk")
        (tmp_path / "keep.json").write_text("{}")
        removed = sweep_temp_files(tmp_path)
        assert len(removed) == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.json", "sub"]


class TestResultKey:
    def test_insertion_order_irrelevant(self):
        a = result_key("cell", {"n": 5, "seed": 0, "model": "sb"})
        b = result_key("cell", {"model": "sb", "seed": 0, "n": 5})
        assert a == b

    def test_distinct_inputs_distinct_keys(self):
        base = result_key("cell", {"n": 5})
        assert result_key("cell", {"n": 6}) != base
        assert result_key("other", {"n": 5}) != base
        assert result_key("cell", {"n": 5}, engine_version="0") != base

    def test_canonical_params_sorted(self):
        assert canonical_params({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("thing", {"x": 1})
        assert store.get(key) is None
        store.put(key, {"value": [1, 2, 3]}, kind="thing", params={"x": 1})
        assert store.get(key) == {"value": [1, 2, 3]}
        assert key in store
        assert store.stats() == {
            "hits": 1, "misses": 1, "puts": 1, "healed": 0, "entries": 1,
        }

    def test_deterministic_entry_bytes(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        key = result_key("thing", {"x": 1})
        a.put(key, {"v": 2}, kind="thing", params={"x": 1})
        b.put(key, {"v": 2}, kind="thing", params={"x": 1})
        path_a, path_b = a.entry_path(key), b.entry_path(key)
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_undecodable_entry_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("thing", {})
        store.put(key, {"v": 1})
        with open(store.entry_path(key), "w") as fh:
            fh.write("{truncated")
        assert store.get(key) is None
        assert store.healed == 1
        assert not os.path.exists(store.entry_path(key))

    def test_digest_mismatch_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("thing", {})
        store.put(key, {"v": 1})
        path = store.entry_path(key)
        with open(path) as fh:
            entry = json.load(fh)
        entry["payload"]["v"] = 999  # flip a payload bit, keep the digest
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert store.get(key) is None
        assert store.healed == 1

    def test_mis_keyed_entry_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        key_a = result_key("thing", {"x": "a"})
        key_b = result_key("thing", {"x": "b"})
        store.put(key_a, {"v": 1})
        os.makedirs(os.path.dirname(store.entry_path(key_b)), exist_ok=True)
        os.replace(store.entry_path(key_a), store.entry_path(key_b))
        assert store.get(key_b) is None  # content says key_a: quarantined
        assert store.healed == 1

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("thing", {})
        store.put(key, {"v": 1})
        assert store.invalidate(key)
        assert key not in store
        assert not store.invalidate(key)

    def test_journal_records_puts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result_key("a", {}), {"v": 1}, kind="a")
        store.put(result_key("b", {}), {"v": 2}, kind="b")
        lines = [json.loads(l) for l in open(store.journal_path)]
        assert [l["op"] for l in lines] == ["put", "put"]

    def test_gc_prunes_stale_versions_and_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        good = result_key("thing", {"x": 1})
        store.put(good, {"v": 1}, kind="thing")
        # A stale-generation entry, written as the old engine would have.
        stale = result_key("thing", {"x": 2}, engine_version="0")
        path = store.entry_path(stale)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "key": stale, "kind": "thing", "params": {"x": 2},
            "engine_version": "0", "payload": {"v": 2},
            "payload_sha256": store._digest({"v": 2}),
        }
        with open(path, "w") as fh:
            json.dump(entry, fh)
        # A corrupt file and an orphaned temp file.
        corrupt = result_key("thing", {"x": 3})
        os.makedirs(os.path.dirname(store.entry_path(corrupt)), exist_ok=True)
        with open(store.entry_path(corrupt), "w") as fh:
            fh.write("not json")
        with open(os.path.join(store.root, ".tmp-orphan"), "w") as fh:
            fh.write("junk")

        report = store.gc()
        assert report == {
            "temp_files": 1,
            "corrupt_entries": 1,
            "stale_versions": 1,
            "stale_codecs": 0,
        }
        assert store.get(good) == {"v": 1}

    def test_gc_prunes_stale_snapshot_codecs(self, tmp_path):
        # Entries written before the quotient snapshot codec ("2") carry
        # either an older stamp or no stamp at all; gc prunes both, while
        # current-codec entries survive.
        from repro.core.engine import ENGINE_VERSION
        from repro.store.snapshot import SNAPSHOT_CODEC_VERSION

        store = ResultStore(tmp_path)
        good = result_key("thing", {"x": 1})
        store.put(good, {"v": 1}, kind="thing")
        assert json.load(open(store.entry_path(good)))["snapshot_codec"] == (
            SNAPSHOT_CODEC_VERSION
        )
        stale_entries = {
            result_key("thing", {"x": 2}): "0",   # older codec stamp
            result_key("thing", {"x": 3}): None,  # pre-quotient: no stamp
        }
        for key, codec in stale_entries.items():
            path = store.entry_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            entry = {
                "key": key, "kind": "thing", "params": {},
                "engine_version": ENGINE_VERSION, "payload": {"v": 2},
                "payload_sha256": store._digest({"v": 2}),
            }
            if codec is not None:
                entry["snapshot_codec"] = codec
            with open(path, "w") as fh:
                json.dump(entry, fh)

        report = store.gc()
        assert report["stale_codecs"] == 2
        assert report["stale_versions"] == 0
        assert store.get(good) == {"v": 1}
        for key in stale_entries:
            assert key not in store

        # prune_versions=False leaves codec-stale entries alone too.
        for key in stale_entries:
            path = store.entry_path(key)
            entry = {
                "key": key, "kind": "thing", "params": {},
                "engine_version": ENGINE_VERSION, "payload": {"v": 2},
                "payload_sha256": store._digest({"v": 2}),
            }
            with open(path, "w") as fh:
                json.dump(entry, fh)
        assert store.gc(prune_versions=False)["stale_codecs"] == 0
        assert all(key in store for key in stale_entries)

    def test_entries_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        for x in range(3):
            store.put(result_key("k", {"x": x}), {"x": x})
        assert len(store) == 3
        keys = {key for key, _entry in store.entries()}
        assert keys == {result_key("k", {"x": x}) for x in range(3)}


class TestResolution:
    def test_default_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store() is None
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        store = default_store()
        assert store is not None and store.root == str(tmp_path)

    def test_resolve_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_store(None) is None
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path)).root == str(tmp_path)


class TestFetchOrCompute:
    def test_without_store_just_computes(self):
        calls = []
        value = fetch_or_compute(
            None, "k", {}, lambda: calls.append(1) or 42, lambda v: {"v": v},
            lambda p: p["v"],
        )
        assert value == 42 and calls == [1]

    def test_second_fetch_served_from_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def fetch():
            return fetch_or_compute(
                store, "k", {"x": 1},
                lambda: calls.append(1) or {"answer": 7},
                lambda v: dict(v), lambda p: dict(p),
            )

        assert fetch() == {"answer": 7}
        assert fetch() == {"answer": 7}
        assert calls == [1]
        assert store.hits == 1 and store.puts == 1

    def test_decode_failure_recomputes_and_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("k", {"x": 1})
        store.put(key, {"wrong": "shape"}, kind="k", params={"x": 1})

        def decode(payload):
            return payload["answer"]  # KeyError on the bad entry

        value = fetch_or_compute(
            store, "k", {"x": 1}, lambda: {"answer": 7}, lambda v: dict(v), decode
        )
        assert value == {"answer": 7}
        assert store.healed == 1
        assert store.get(key) == {"answer": 7}


class TestTableIntegration:
    # Counter assertions pin parallel=False: under the process pool each
    # worker opens its own store handle, so the parent's counters stay 0
    # (the disk-state test below covers that backend).
    def test_warm_table_skips_computation(self, tmp_path):
        from repro.analysis.tables import reproduce_table1

        store = ResultStore(tmp_path)
        cold = reproduce_table1(n=4, seed=0, store=store, parallel=False)
        assert store.puts == 16 and store.hits == 0
        warm = reproduce_table1(n=4, seed=0, store=store, parallel=False)
        assert store.hits == 16 and store.puts == 16
        for a, b in zip(cold, warm):
            assert (a.model, a.knowledge, a.consistent, a.measured) == (
                b.model, b.knowledge, b.consistent, b.measured
            )
            assert a.details == b.details
            assert a.manifest == b.manifest

    def test_corrupted_cell_recomputes_transparently(self, tmp_path):
        from repro.analysis.tables import reproduce_table1

        store = ResultStore(tmp_path)
        reproduce_table1(n=4, seed=0, store=store, parallel=False)
        # Corrupt one arbitrary entry on disk.
        key, _ = next(store.entries())
        with open(store.entry_path(key), "w") as fh:
            fh.write("bitrot")
        results = reproduce_table1(n=4, seed=0, store=store, parallel=False)
        assert store.healed == 1
        assert all(r.consistent for r in results)
        assert len(store) == 16  # healed entry was re-persisted

    def test_parallel_backend_fills_and_reads_store(self, tmp_path):
        from repro.analysis.tables import reproduce_table1

        store = ResultStore(tmp_path)
        cold = reproduce_table1(n=4, seed=0, store=store, parallel=True, workers=2)
        assert len(store) == 16  # workers persisted every cell
        warm = reproduce_table1(n=4, seed=0, store=store, parallel=True, workers=2)
        for a, b in zip(cold, warm):
            assert (a.model, a.knowledge, a.consistent) == (
                b.model, b.knowledge, b.consistent
            )
            assert a.details == b.details
            assert a.manifest == b.manifest
        # And a sequential read of the pool-filled store is pure hits.
        store.hits = store.puts = 0
        reproduce_table1(n=4, seed=0, store=store, parallel=False)
        assert store.hits == 16 and store.puts == 0

    def test_sweep_uses_store(self, tmp_path):
        from repro.analysis.rates import sweep_proof_invariants

        store = ResultStore(tmp_path)
        specs = [(4, 3, 0, 12), (4, 3, 1, 12)]
        first = sweep_proof_invariants(specs, store=store)
        assert store.puts == 2
        second = sweep_proof_invariants(specs, store=store)
        assert store.hits == 2 and store.puts == 2
        assert [c.ok for c in first] == [c.ok for c in second]
        assert [c.problems for c in first] == [c.problems for c in second]
