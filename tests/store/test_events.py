"""The per-job event log behind the service's SSE feed.

The contract under test: ids are dense and 1-based, a fresh writer
resumes numbering from what is already on disk, reads after a cursor
replay nothing twice, torn lines are invisible, and the per-job cap
drops the tail instead of growing without bound.
"""

from __future__ import annotations

import json

import pytest

import repro.store.events as events_module
from repro.store.atomic import append_line
from repro.store.events import MAX_EVENTS_PER_JOB, JobEventLog


class TestAppendAndRead:
    def test_ids_are_dense_from_one(self, tmp_path):
        log = JobEventLog(tmp_path)
        assert log.append("job", "progress", {"u": 1}) == 1
        assert log.append("job", "progress", {"u": 2}) == 2
        assert log.append("job", "trace", {"round": 0}) == 3
        events = log.read("job")
        assert [e["id"] for e in events] == [1, 2, 3]
        assert [e["event"] for e in events] == ["progress", "progress", "trace"]
        assert events[0]["data"] == {"u": 1}

    def test_jobs_are_independent(self, tmp_path):
        log = JobEventLog(tmp_path)
        assert log.append("a", "progress", {}) == 1
        assert log.append("b", "progress", {}) == 1
        assert log.last_id("a") == 1
        assert log.read("missing") == []
        assert log.last_id("missing") == 0

    def test_read_after_cursor_replays_nothing(self, tmp_path):
        log = JobEventLog(tmp_path)
        for i in range(1, 6):
            log.append("job", "progress", {"u": i})
        tail = log.read("job", after=3)
        assert [e["id"] for e in tail] == [4, 5]
        assert log.read("job", after=5) == []

    def test_fresh_writer_resumes_numbering_from_disk(self, tmp_path):
        first = JobEventLog(tmp_path)
        first.append("job", "progress", {"attempt": 1})
        first.append("job", "progress", {"attempt": 1})
        # A retried job's runner is a brand-new process with a brand-new
        # log instance; its events must extend the feed, not restart it.
        second = JobEventLog(tmp_path)
        assert second.append("job", "progress", {"attempt": 2}) == 3
        assert [e["id"] for e in second.read("job")] == [1, 2, 3]

    def test_torn_trailing_line_is_skipped_then_healed(self, tmp_path):
        log = JobEventLog(tmp_path)
        log.append("job", "progress", {"u": 1})
        with open(log.path("job"), "ab") as fh:
            fh.write(b'{"id": 2, "event": "progress", "da')  # torn write
        assert [e["id"] for e in log.read("job")] == [1]
        # The torn line has no newline, so the on-disk count still says
        # one event — a (hypothetical) new writer would assign id 2.
        assert JobEventLog(tmp_path).append("job", "x", {}) == 2

    def test_garbage_lines_are_skipped(self, tmp_path):
        import os

        log = JobEventLog(tmp_path)
        os.makedirs(log.events_dir, exist_ok=True)
        append_line(log.path("job"), "not json at all")
        append_line(log.path("job"), json.dumps({"no": "id"}))
        append_line(log.path("job"), json.dumps({"id": "seven"}))
        assert log.read("job") == []


class TestCap:
    def test_cap_drops_the_tail(self, tmp_path, monkeypatch):
        monkeypatch.setattr(events_module, "MAX_EVENTS_PER_JOB", 3)
        log = JobEventLog(tmp_path)
        assert [log.append("job", "e", {"i": i}) for i in range(5)] == [
            1,
            2,
            3,
            None,
            None,
        ]
        assert [e["id"] for e in log.read("job")] == [1, 2, 3]

    def test_default_cap_is_generous(self):
        assert MAX_EVENTS_PER_JOB >= 10_000
