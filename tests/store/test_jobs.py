"""End-to-end tests of the durable runners: worker loop, CLI, kill -9."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.store.cache import ResultStore
from repro.store.jobs import (
    JOB_KINDS,
    document_key,
    expected_result_key,
    noop_document,
    open_queue,
    open_store,
    run_job,
    run_worker,
    table_document,
)
from repro.store.scheduler import DONE, FAILED, RUNNING, JobQueue

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    env.pop("REPRO_PARALLEL", None)  # byte-identity tests pin one backend
    return env


def read_doc_bytes(store: ResultStore, key: str) -> bytes:
    with open(store.entry_path(key), "rb") as fh:
        return fh.read()


class TestRunWorker:
    def test_table_job_end_to_end(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        record = queue.submit("table1", {"n": 4, "seed": 0})
        assert run_worker(tmp_path, queue=queue, store=store) == 1
        finished = queue.get(record.id)
        assert finished.status == DONE
        assert finished.progress == {"units_done": 16, "units_total": 16}
        doc = store.get(finished.result_key)
        assert doc["kind"] == "table1"
        assert doc["summary"] == {"cells": 16, "consistent": 16, "verdict": "PASS"}
        assert finished.result_key == document_key("table1", {"n": 4, "seed": 0})

    def test_rerun_serves_cells_from_store(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        queue.submit("table1", {"n": 4, "seed": 0})
        run_worker(tmp_path, queue=queue, store=store)
        first_puts = store.puts
        # Same work, fresh job identity space: force a re-run by reviving.
        record = queue.submit("table1", {"n": 4, "seed": 0})
        job = queue.get(record.id)
        job.status = "queued"
        queue._write(job)
        run_worker(tmp_path, queue=queue, store=store)
        assert store.hits >= 16  # every cell came from disk
        assert store.puts == first_puts + 1  # only the document rewritten

    def test_sweep_job(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        params = {"specs": [[4, 3, 0, 12], [4, 3, 1, 12]]}
        record = queue.submit("sweep", params)
        assert run_worker(tmp_path, queue=queue, store=store) == 1
        doc = store.get(queue.get(record.id).result_key)
        assert doc["summary"] == {"checks": 2, "ok": 2, "verdict": "PASS"}

    def test_unknown_kind_fails_with_error(self, tmp_path):
        queue = open_queue(tmp_path)
        record = queue.submit("haruspicy", {}, max_attempts=1)
        run_worker(tmp_path, queue=queue, store=open_store(tmp_path))
        parked = queue.get(record.id)
        assert parked.status == FAILED
        assert "unknown job kind" in parked.error

    def test_failed_job_retries_until_budget(self, tmp_path):
        queue = JobQueue(os.path.join(tmp_path, "queue"), retry_base=0.0)
        record = queue.submit("haruspicy", {}, max_attempts=3)
        processed = run_worker(tmp_path, queue=queue, store=open_store(tmp_path))
        assert processed == 3  # claimed, failed, retried, retried, parked
        assert queue.get(record.id).status == FAILED
        assert queue.get(record.id).attempts == 3

    def test_table_document_is_pure(self):
        cells = [{"consistent": True}, {"consistent": False}]
        doc = table_document("table1", 4, 0, cells)
        assert doc["summary"]["verdict"] == "FAIL"
        assert table_document("table1", 4, 0, cells) == doc
        assert set(JOB_KINDS) == {
            "table1",
            "table2",
            "certificate",
            "sweep",
            "scenario",
            "noop",
        }

    def test_noop_job_end_to_end(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        record = queue.submit("noop", {"i": 3, "seed": 1})
        assert run_worker(tmp_path, queue=queue, store=store) == 1
        finished = queue.get(record.id)
        assert finished.status == DONE
        doc = store.get(finished.result_key)
        assert doc["kind"] == "noop"
        assert doc["summary"]["verdict"] == "PASS"
        assert doc == noop_document({"i": 3, "seed": 1})

    def test_noop_document_ignores_acceleration_flags(self):
        plain = noop_document({"i": 1})
        accelerated = noop_document({"i": 1, "quotient": True, "vector": True})
        assert plain == accelerated


class TestExpectedResultKey:
    """The orchestrator's dedup handle predicts each runner's store key."""

    def test_noop_key_matches_runner(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        record = queue.submit("noop", {"i": 7, "quotient": True})
        run_worker(tmp_path, queue=queue, store=store)
        assert queue.get(record.id).result_key == expected_result_key(
            "noop", {"i": 7, "quotient": True}
        )
        # The prediction strips acceleration flags, like the runner.
        assert expected_result_key("noop", {"i": 7}) == expected_result_key(
            "noop", {"i": 7, "vector": True}
        )

    def test_sweep_key_matches_runner(self, tmp_path):
        queue = open_queue(tmp_path)
        store = open_store(tmp_path)
        params = {"specs": [[4, 3, 0, 12]]}
        record = queue.submit("sweep", params)
        run_worker(tmp_path, queue=queue, store=store)
        assert queue.get(record.id).result_key == expected_result_key("sweep", params)

    def test_table_key_fills_runner_defaults(self):
        assert expected_result_key("table2", {}) == document_key(
            "table2", {"n": 5, "seed": 0}
        )
        assert expected_result_key("table1", {"seed": 2}) == document_key(
            "table1", {"n": 6, "seed": 2}
        )

    def test_unpredictable_kinds_return_none(self):
        assert expected_result_key("haruspicy", {}) is None
        assert expected_result_key("scenario", {"config": {"bogus": True}}) is None


class TestLeaseTakeoverRace:
    """Two workers spotting the same stale lease: exactly one wins, and
    the loser's attempt leaves the record uncorrupted."""

    def _stale_job(self, tmp_path, max_attempts=5):
        queue = JobQueue(os.path.join(tmp_path, "queue"), lease_ttl=0.05)
        record = queue.submit("noop", {"i": 0}, max_attempts=max_attempts)
        claimed = queue.claim()
        assert claimed is not None and claimed.id == record.id
        time.sleep(0.08)  # let the lease age past its TTL
        return record.id

    def test_orphaned_lease_on_queued_record_is_broken(self, tmp_path):
        """A worker dying between lease acquisition and the RUNNING
        write leaves a QUEUED record under a dead lease; claimants must
        break the corpse instead of skipping the job forever."""
        queue = JobQueue(os.path.join(tmp_path, "queue"), lease_ttl=0.05, owner="survivor")
        record = queue.submit("noop", {"i": 1})
        os.makedirs(queue.leases_dir, exist_ok=True)
        with open(queue.lease_path(record.id), "w", encoding="utf-8") as fh:
            json.dump({"owner": "corpse", "heartbeat": time.time()}, fh)
        # Fresh lease: looks like a rival claim in flight — back off.
        assert queue.claim() is None
        assert queue.stats()["lease_conflicts"] == 1
        time.sleep(0.08)  # the corpse never heartbeats; the lease goes stale
        taken = queue.claim()
        assert taken is not None and taken.id == record.id
        assert taken.status == RUNNING
        assert queue.stats()["takeovers"] == 1
        queue.heartbeat(record.id)  # the lease is ours now

    def test_concurrent_stale_claims_resolve_to_one_owner(self, tmp_path):
        import threading

        for rep in range(10):
            root = tmp_path / f"rep{rep}"
            job_id = self._stale_job(root)
            workers = [
                JobQueue(os.path.join(root, "queue"), lease_ttl=0.05, owner=f"w{k}")
                for k in range(2)
            ]
            barrier = threading.Barrier(2)
            results = [None, None]

            def contend(k):
                barrier.wait()
                results[k] = workers[k].claim()

            threads = [
                threading.Thread(target=contend, args=(k,)) for k in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            winners = [r for r in results if r is not None]
            assert len(winners) == 1, f"rep {rep}: {len(winners)} workers won"
            assert winners[0].id == job_id
            # One takeover happened fleet-wide, and the loser recorded a
            # conflict instead of a second ownership.
            takeovers = sum(w.counters["takeovers"] for w in workers)
            assert takeovers == 1
            # The record survived the race intact: parsable, running,
            # exactly one attempt charged.
            record = workers[0].get(job_id)
            assert record is not None
            assert record.status == RUNNING
            assert record.attempts == 1
            # And the winner's lease is live: a third worker sees
            # nothing claimable.
            third = JobQueue(os.path.join(root, "queue"), lease_ttl=30.0, owner="w3")
            assert third.claim() is None

    def test_loser_cannot_break_fresh_lease(self, tmp_path):
        # A slow loser that decided to break the lease *before* the
        # winner re-acquired must not unseat the winner afterwards: the
        # rename-based break targets the old lease file, which is gone.
        job_id = self._stale_job(tmp_path)
        winner = JobQueue(os.path.join(tmp_path, "queue"), lease_ttl=0.05, owner="w0")
        loser = JobQueue(os.path.join(tmp_path, "queue"), lease_ttl=0.05, owner="w1")
        assert winner.claim() is not None
        # The loser saw the pre-takeover stale lease; by the time it
        # acts, the winner holds a fresh one.  _break_lease renames the
        # *current* path, so simulate the stalest possible loser: the
        # lease is fresh now, so _lease_stale says no and claim skips it.
        assert loser.claim() is None
        winner.heartbeat(job_id)  # the winner still owns the lease


class TestKillResume:
    """The acceptance scenario: SIGKILL a worker mid-table, resume, and
    the final document is byte-for-byte what an uninterrupted run emits."""

    @pytest.mark.slow
    def test_sigkill_then_resume_yields_identical_document(self, tmp_path):
        interrupted_root = tmp_path / "interrupted"
        clean_root = tmp_path / "clean"
        params = {"n": 4, "seed": 0}

        # Uninterrupted reference run.
        clean_queue = open_queue(clean_root)
        clean_store = open_store(clean_root)
        clean_record = clean_queue.submit("table2", params)
        run_worker(clean_root, queue=clean_queue, store=clean_store)
        clean_key = clean_queue.get(clean_record.id).result_key
        clean_bytes = read_doc_bytes(clean_store, clean_key)

        # Interrupted run: spawn a worker subprocess, kill -9 it once it
        # has persisted at least one cell but before it can finish.
        queue = JobQueue(os.path.join(interrupted_root, "queue"), lease_ttl=0.5)
        store = open_store(interrupted_root)
        record = queue.submit("table2", params)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "store", "--root", str(interrupted_root), "run"],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                progress = queue.get(record.id).progress
                if progress.get("units_done", 0) >= 1:
                    break
                if worker.poll() is not None:  # finished too fast: still fine
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker never reported progress")
        finally:
            if worker.poll() is None:
                os.kill(worker.pid, signal.SIGKILL)
            worker.wait()

        interrupted = queue.get(record.id)
        if interrupted.status != DONE:
            # The crash left a stale lease and a partially filled store;
            # a fresh worker must break the lease and finish the rest.
            time.sleep(0.6)  # let the lease age past its TTL
            hits_before = store.hits
            assert run_worker(interrupted_root, queue=queue, store=store) == 1
            assert store.hits > hits_before or store.puts > 0
        resumed = queue.get(record.id)
        assert resumed.status == DONE

        resumed_bytes = read_doc_bytes(store, resumed.result_key)
        assert resumed.result_key == clean_key
        assert resumed_bytes == clean_bytes


class TestStoreCLI:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "store", *args],
            env=_env(),
            capture_output=True,
            text=True,
        )

    def test_submit_run_result_status_gc(self, tmp_path):
        root = str(tmp_path)
        submitted = self.run_cli("--root", root, "submit", "table1", "--n", "4")
        assert submitted.returncode == 0
        record = json.loads(submitted.stdout)
        assert record["kind"] == "table1" and record["status"] == "queued"

        ran = self.run_cli("--root", root, "run")
        assert ran.returncode == 0, ran.stderr
        assert "processed 1 job(s)" in ran.stdout

        result = self.run_cli("--root", root, "result", record["id"])
        assert result.returncode == 0, result.stderr
        doc = json.loads(result.stdout)
        assert doc["summary"]["verdict"] == "PASS"

        status = self.run_cli("--root", root, "status")
        payload = json.loads(status.stdout)
        assert payload["queue"]["done"] == 1
        assert payload["store"]["entries"] == 17  # 16 cells + the document

        gc = self.run_cli("--root", root, "gc")
        assert gc.returncode == 0
        assert json.loads(gc.stdout)["store"]["corrupt_entries"] == 0

    def test_result_before_run_explains(self, tmp_path):
        root = str(tmp_path)
        record = json.loads(
            self.run_cli("--root", root, "submit", "table1", "--n", "4").stdout
        )
        result = self.run_cli("--root", root, "result", record["id"])
        assert result.returncode == 1
        assert "no result document yet" in result.stderr

    def test_sweep_submit_requires_specs(self, tmp_path):
        out = self.run_cli("--root", str(tmp_path), "submit", "sweep")
        assert out.returncode != 0

    def test_sweep_submit_and_run(self, tmp_path):
        root = str(tmp_path)
        record = json.loads(
            self.run_cli(
                "--root", root, "submit", "sweep", "--spec", "4,3,0,12"
            ).stdout
        )
        assert record["params"] == {"specs": [[4, 3, 0, 12]]}
        ran = self.run_cli("--root", root, "run")
        assert ran.returncode == 0, ran.stderr
