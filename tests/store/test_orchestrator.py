"""The asyncio dispatcher: saturation, dedup, heartbeats, crash recovery."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine.trace import MetricsRegistry
from repro.store.jobs import expected_result_key, open_queue, open_store
from repro.store.orchestrator import (
    Orchestrator,
    orchestrate,
    publish_orchestrator_metrics,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    env.update(extra)
    return env


class TestOrchestrate:
    def test_drains_a_sharded_queue(self, tmp_path):
        queue = open_queue(tmp_path, shards=4)
        for i in range(25):
            queue.submit("noop", {"i": i})
        stats = orchestrate(tmp_path, queue=queue, pools=2)
        assert stats["completed"] == 25
        assert stats["failed"] == 0
        assert stats["dispatched"] == 25
        assert stats["claimed"] == 25
        assert queue.counts() == {"queued": 0, "running": 0, "done": 25, "failed": 0}
        store = open_store(tmp_path)
        for record in queue.jobs():
            assert record.result_key in store

    def test_flat_queue_also_works(self, tmp_path):
        queue = open_queue(tmp_path)
        for i in range(5):
            queue.submit("noop", {"i": i})
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        assert stats["completed"] == 5
        assert queue.counts()["done"] == 5

    def test_identical_work_dispatches_once(self, tmp_path):
        queue = open_queue(tmp_path, shards=2)
        # Same noop identity, different acceleration flags: distinct job
        # ids (content-addressed on full params) but one result_key.
        a = queue.submit("noop", {"i": 1})
        b = queue.submit("noop", {"i": 1, "quotient": True})
        assert a.id != b.id
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        assert stats["completed"] == 2
        assert stats["dispatched"] == 1
        # The duplicate is parked behind the in-flight twin, then served
        # from the store once the twin's document lands.
        assert stats["dedup_inflight"] == 1
        assert stats["dedup_store"] == 1
        key = expected_result_key("noop", {"i": 1})
        assert queue.get(a.id).result_key == key
        assert queue.get(b.id).result_key == key

    def test_already_stored_results_skip_dispatch(self, tmp_path):
        queue = open_queue(tmp_path, shards=2)
        queue.submit("noop", {"i": 9})
        orchestrate(tmp_path, queue=queue, pools=1)
        # Re-queue the same work under a different job id; its document
        # is already in the store, so no pool execution happens.
        queue.submit("noop", {"i": 9, "vector": True})
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        assert stats["completed"] == 1
        assert stats["dispatched"] == 0
        assert stats["dedup_store"] == 1

    def test_max_jobs_bounds_admission(self, tmp_path):
        queue = open_queue(tmp_path, shards=2)
        for i in range(10):
            queue.submit("noop", {"i": i})
        stats = orchestrate(tmp_path, queue=queue, pools=1, max_jobs=4)
        assert stats["claimed"] == 4
        assert queue.counts()["done"] == 4
        assert queue.counts()["queued"] == 6

    def test_failed_jobs_surface_in_stats(self, tmp_path):
        queue = open_queue(tmp_path, shards=2)
        queue.submit("haruspicy", {"i": 1}, max_attempts=1)
        queue.submit("noop", {"i": 2})
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        assert stats["failed"] == 1
        assert stats["completed"] == 1
        assert queue.counts()["failed"] == 1

    def test_rejects_zero_pools(self, tmp_path):
        with pytest.raises(ValueError):
            Orchestrator(tmp_path, pools=0)

    def test_window_defaults_scale_with_pools(self, tmp_path):
        orch = Orchestrator(tmp_path, pools=3, pool_workers=2)
        assert orch.window == 24
        assert Orchestrator(tmp_path, pools=1, window=5).window == 5


class TestHeartbeat:
    def test_long_job_survives_a_tiny_lease_ttl(self, tmp_path, monkeypatch):
        """The event-loop heartbeat outlives the lease TTL: a job running
        for many TTLs is never stolen or double-run."""
        import repro.store.jobs as jobs_mod

        sleepy_original = jobs_mod._RUNNERS["noop"]

        def slow_noop(queue, store, record):
            time.sleep(1.2)  # many multiples of the 0.3s TTL below
            return sleepy_original(queue, store, record)

        # Pools fork, so children inherit the patched runner table.
        monkeypatch.setitem(jobs_mod._RUNNERS, "noop", slow_noop)
        monkeypatch.setenv("REPRO_LEASE_STALE_SECONDS", "0.3")
        monkeypatch.setenv("REPRO_HEARTBEAT_SECONDS", "0.1")
        queue = open_queue(tmp_path, shards=2)
        record = queue.submit("noop", {"i": 1}, max_attempts=3)
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        assert stats["completed"] == 1
        assert stats["lease_lost"] == 0
        assert stats["heartbeats"] > 0
        finished = queue.get(record.id)
        assert finished.status == "done"
        assert finished.attempts == 0  # never taken over


class TestMetrics:
    def test_publish_folds_orchestrator_and_queue_counters(self, tmp_path):
        queue = open_queue(tmp_path, shards=2)
        for i in range(6):
            queue.submit("noop", {"i": i})
        stats = orchestrate(tmp_path, queue=queue, pools=1)
        registry = MetricsRegistry()
        publish_orchestrator_metrics(registry, stats, queue_stats=queue.stats())
        snapshot = registry.as_dict()
        assert snapshot["orchestrator_dispatched"]["value"] == 6
        assert snapshot["orchestrator_completed"]["value"] == 6
        assert snapshot["scheduler_claims"]["value"] == 6
        assert snapshot["scheduler_takeovers"]["value"] == 0


class TestCLI:
    def test_run_pools_flag(self, tmp_path):
        root = str(tmp_path)
        base = [sys.executable, "-m", "repro", "store", "--root", root]
        subprocess.run(
            base + ["--shards", "2", "submit", "noop", "--param", "i=1"],
            env=_env(),
            check=True,
            stdout=subprocess.DEVNULL,
        )
        ran = subprocess.run(
            base + ["run", "--pools", "1"], env=_env(), capture_output=True, text=True
        )
        assert ran.returncode == 0, ran.stderr
        payload = json.loads(ran.stdout)
        assert payload["orchestrator"]["completed"] == 1
        assert payload["queue"]["done"] == 1


class TestKillHalfTheFleet:
    """The acceptance scenario at reduced scale: two orchestrator
    fleets, one SIGKILLed mid-campaign; survivors finish the campaign
    and every document is byte-identical to a sequential reference."""

    @pytest.mark.slow
    def test_campaign_survives_killing_an_orchestrator(self, tmp_path):
        fleet_root = tmp_path / "fleet"
        reference_root = tmp_path / "reference"
        jobs = 40

        for root in (fleet_root, reference_root):
            queue = open_queue(root, shards=4)
            for i in range(jobs):
                queue.submit("noop", {"i": i // 4, "seed": i % 4}, max_attempts=5)

        # Sequential reference run.
        from repro.store.jobs import run_worker

        run_worker(reference_root, queue=open_queue(reference_root))

        env = _env(REPRO_LEASE_STALE_SECONDS="1.0", REPRO_HEARTBEAT_SECONDS="0.2")
        cmd = [
            sys.executable, "-m", "repro", "store", "--root", str(fleet_root),
            "run", "--wait", "--pools", "1",
        ]
        # start_new_session so SIGKILLing the group takes the pool
        # children (and their held leases) down with the orchestrator.
        workers = [
            subprocess.Popen(
                cmd, env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, start_new_session=True,
            )
            for _ in range(2)
        ]
        victim, survivor = workers
        fleet_queue = open_queue(fleet_root)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                done = fleet_queue.counts()["done"]
                if done >= jobs // 8:
                    break
                time.sleep(0.05)
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
            while time.time() < deadline:
                if fleet_queue.counts()["done"] >= jobs:
                    break
                time.sleep(0.1)
            counts = fleet_queue.counts()
            assert counts["done"] == jobs, counts
        finally:
            for worker in workers:
                if worker.poll() is None:
                    os.killpg(worker.pid, signal.SIGTERM)
                worker.wait()

        # Byte-identity of every document against the reference.
        ref_queue = open_queue(reference_root)
        ref_store = open_store(reference_root)
        fleet_store = open_store(fleet_root)
        ref_keys = {r.id: r.result_key for r in ref_queue.jobs()}
        fleet_records = fleet_queue.jobs()
        assert len(fleet_records) == jobs
        for record in fleet_records:
            assert record.result_key == ref_keys[record.id]
            with open(ref_store.entry_path(record.result_key), "rb") as fh:
                ref_bytes = fh.read()
            with open(fleet_store.entry_path(record.result_key), "rb") as fh:
                fleet_bytes = fh.read()
            assert fleet_bytes == ref_bytes
