"""Unit tests for the lock-file-lease job queue."""

import json
import os
import time

import pytest

from repro.store.scheduler import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    JobRecord,
    LeaseBroken,
    job_id_for,
)


class TestIdentity:
    def test_job_id_deterministic(self):
        a = job_id_for("table1", {"n": 5, "seed": 0})
        b = job_id_for("table1", {"seed": 0, "n": 5})
        assert a == b and len(a) == 16

    def test_job_id_distinguishes_work(self):
        base = job_id_for("table1", {"n": 5})
        assert job_id_for("table2", {"n": 5}) != base
        assert job_id_for("table1", {"n": 6}) != base


class TestRecord:
    def test_round_trip(self):
        record = JobRecord(id="abc", kind="table1", params={"n": 4}, attempts=2)
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="status"):
            JobRecord.from_dict(
                {"id": "x", "kind": "k", "params": {}, "status": "zombie"}
            )


class TestSubmitClaim:
    def test_submit_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit("table1", {"n": 4, "seed": 0})
        again = queue.submit("table1", {"n": 4, "seed": 0})
        assert first.id == again.id
        assert len(queue.jobs()) == 1

    def test_claim_marks_running_and_leases(self, tmp_path):
        queue = JobQueue(tmp_path)
        submitted = queue.submit("table1", {"n": 4})
        claimed = queue.claim()
        assert claimed.id == submitted.id
        assert queue.get(claimed.id).status == RUNNING
        assert os.path.exists(queue.lease_path(claimed.id))
        assert queue.claim() is None  # nothing else to take

    def test_other_worker_cannot_steal_fresh_lease(self, tmp_path):
        queue_a = JobQueue(tmp_path, lease_ttl=60.0)
        queue_b = JobQueue(tmp_path, lease_ttl=60.0)
        queue_a.submit("table1", {"n": 4})
        assert queue_a.claim() is not None
        assert queue_b.claim() is None

    def test_backoff_window_respected(self, tmp_path):
        queue = JobQueue(tmp_path, retry_base=60.0)
        record = queue.submit("table1", {"n": 4}, max_attempts=3)
        queue.claim()
        queue.fail(record.id, "boom")
        refreshed = queue.get(record.id)
        assert refreshed.status == QUEUED
        assert refreshed.not_before > time.time() + 30
        assert queue.claim() is None  # backoff still in force

    def test_completed_jobs_stay_done(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("table1", {"n": 4})
        queue.claim()
        queue.complete(record.id, result_key="deadbeef")
        done = queue.get(record.id)
        assert done.status == DONE and done.result_key == "deadbeef"
        assert not os.path.exists(queue.lease_path(record.id))
        assert queue.submit("table1", {"n": 4}).status == DONE  # not revived
        assert queue.claim() is None


class TestFailureAndRetry:
    def test_capped_exponential_backoff(self, tmp_path):
        queue = JobQueue(tmp_path, retry_base=1.0, retry_cap=3.0)
        record = queue.submit("table1", {"n": 4}, max_attempts=10)
        delays = []
        for _ in range(4):
            job = queue.get(record.id)
            job.status = QUEUED
            job.not_before = 0.0
            queue._write(job)
            claimed = queue.claim()
            before = time.time()
            queue.fail(claimed.id, "boom")
            delays.append(queue.get(record.id).not_before - before)
        assert delays[0] == pytest.approx(1.0, abs=0.5)
        assert delays[1] == pytest.approx(2.0, abs=0.5)
        assert delays[2] == pytest.approx(3.0, abs=0.5)  # capped
        assert delays[3] == pytest.approx(3.0, abs=0.5)  # stays capped

    def test_attempt_budget_parks_as_failed(self, tmp_path):
        queue = JobQueue(tmp_path, retry_base=0.0)
        record = queue.submit("table1", {"n": 4}, max_attempts=2)
        queue.claim()
        queue.fail(record.id, "first")
        assert queue.get(record.id).status == QUEUED
        queue.claim()
        queue.fail(record.id, "second")
        parked = queue.get(record.id)
        assert parked.status == FAILED
        assert parked.error == "second"
        assert queue.claim() is None

    def test_resubmit_revives_failed_job(self, tmp_path):
        queue = JobQueue(tmp_path, retry_base=0.0)
        record = queue.submit("table1", {"n": 4}, max_attempts=1)
        queue.claim()
        queue.fail(record.id, "boom")
        assert queue.get(record.id).status == FAILED
        revived = queue.submit("table1", {"n": 4})
        assert revived.status == QUEUED and revived.attempts == 0
        assert queue.claim() is not None


class TestCrashRecovery:
    def test_stale_lease_broken_and_job_retaken(self, tmp_path):
        dead = JobQueue(tmp_path, lease_ttl=0.05)
        record = dead.submit("table1", {"n": 4}, max_attempts=3)
        assert dead.claim() is not None
        # Simulate kill -9: the lease file stays, no heartbeat ever comes.
        time.sleep(0.1)
        survivor = JobQueue(tmp_path, lease_ttl=0.05)
        retaken = survivor.claim()
        assert retaken is not None and retaken.id == record.id
        assert retaken.attempts == 1
        assert retaken.status == RUNNING

    def test_dead_worker_with_spent_budget_parks_job(self, tmp_path):
        dead = JobQueue(tmp_path, lease_ttl=0.05)
        record = dead.submit("table1", {"n": 4}, max_attempts=1)
        assert dead.claim() is not None
        time.sleep(0.1)
        survivor = JobQueue(tmp_path, lease_ttl=0.05)
        assert survivor.claim() is None
        assert survivor.get(record.id).status == FAILED

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=0.3)
        record = queue.submit("table1", {"n": 4})
        queue.claim()
        for _ in range(3):
            time.sleep(0.1)
            queue.heartbeat(record.id)
        other = JobQueue(tmp_path, lease_ttl=0.3)
        assert other.claim() is None  # heartbeats kept it fresh

    def test_heartbeat_by_non_owner_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("table1", {"n": 4})
        queue.claim()
        impostor = JobQueue(tmp_path)
        impostor._owner = "elsewhere:1"
        with pytest.raises(LeaseBroken):
            impostor.heartbeat(record.id)

    def test_torn_job_record_is_skipped_not_fatal(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("table1", {"n": 4})
        with open(queue.job_path(record.id), "w") as fh:
            fh.write("{torn")
        assert queue.jobs() == []
        assert queue.claim() is None


class TestMaintenance:
    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit("table1", {"n": 4})
        queue.submit("table2", {"n": 5})
        claimed = queue.claim()
        queue.complete(claimed.id)
        assert queue.counts() == {"queued": 1, "running": 0, "done": 1, "failed": 0}

    def test_gc_breaks_stale_and_finished_leases(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=0.05)
        record = queue.submit("table1", {"n": 4})
        queue.claim()
        time.sleep(0.1)
        report = queue.gc()
        assert report["leases_broken"] == 1
        assert not os.path.exists(queue.lease_path(record.id))

    def test_update_progress(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("table1", {"n": 4})
        queue.update_progress(record.id, {"units_done": 3, "units_total": 16})
        assert queue.get(record.id).progress == {"units_done": 3, "units_total": 16}
