"""The sharded queue: manifest contract, routing, fan-out, contention."""

import json
import os
import time

import pytest

from repro.store.scheduler import DONE, FAILED, JobQueue, RUNNING
from repro.store.shard import (
    MANIFEST_NAME,
    ShardedJobQueue,
    ShardLayoutError,
    shard_for,
    shard_name,
)


class TestManifest:
    def test_create_persists_layout(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=8)
        assert queue.shard_count == 8
        with open(tmp_path / "q" / MANIFEST_NAME) as fh:
            assert json.load(fh)["shards"] == 8

    def test_discovery_without_explicit_count(self, tmp_path):
        ShardedJobQueue(tmp_path / "q", shards=5)
        assert ShardedJobQueue(tmp_path / "q").shard_count == 5

    def test_conflicting_count_is_an_error(self, tmp_path):
        ShardedJobQueue(tmp_path / "q", shards=4)
        with pytest.raises(ShardLayoutError, match="laid out as 4"):
            ShardedJobQueue(tmp_path / "q", shards=8)
        # Matching count is fine.
        assert ShardedJobQueue(tmp_path / "q", shards=4).shard_count == 4

    def test_absurd_counts_rejected(self, tmp_path):
        with pytest.raises(ShardLayoutError):
            ShardedJobQueue(tmp_path / "a", shards=0)
        with pytest.raises(ShardLayoutError):
            ShardedJobQueue(tmp_path / "b", shards=5000)

    def test_corrupt_manifest_is_an_error(self, tmp_path):
        root = tmp_path / "q"
        os.makedirs(root)
        (root / MANIFEST_NAME).write_text("not json")
        with pytest.raises(ShardLayoutError, match="unreadable"):
            ShardedJobQueue(root)

    def test_legacy_flat_queue_refused(self, tmp_path):
        flat = JobQueue(tmp_path / "q")
        flat.submit("noop", {"i": 1})
        with pytest.raises(ShardLayoutError, match="legacy flat"):
            ShardedJobQueue(tmp_path / "q", shards=4)


class TestRouting:
    def test_shard_for_is_stable_and_in_range(self):
        placements = {shard_for(f"job{i:04x}", 8) for i in range(256)}
        assert placements <= set(range(8))
        assert len(placements) > 1  # the hash actually spreads
        assert shard_for("abc", 8) == shard_for("abc", 8)

    def test_submit_lands_on_the_hashed_shard(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=4)
        record = queue.submit("noop", {"i": 1})
        index = shard_for(record.id, 4)
        path = tmp_path / "q" / shard_name(index) / "jobs" / f"{record.id}.json"
        assert path.exists()
        assert queue.get(record.id).id == record.id

    def test_two_instances_agree_on_placement(self, tmp_path):
        a = ShardedJobQueue(tmp_path / "q", shards=6)
        b = ShardedJobQueue(tmp_path / "q")
        record = a.submit("noop", {"i": 9})
        assert b.get(record.id) is not None
        b.complete(record.id, result_key="k")
        assert a.get(record.id).status == DONE


class TestClaiming:
    def test_interleaved_claimants_take_each_job_exactly_once(self, tmp_path):
        a = ShardedJobQueue(tmp_path / "q", shards=4, owner="a", rng=1)
        b = ShardedJobQueue(tmp_path / "q", owner="b", rng=2)
        submitted = {a.submit("noop", {"i": i}).id for i in range(40)}
        taken = []
        misses = 0
        turn = 0
        while misses < 2:  # both claimants came up empty back to back
            claimant = (a, b)[turn % 2]
            turn += 1
            record = claimant.claim()
            if record is None:
                misses += 1
                continue
            misses = 0
            taken.append(record.id)
            claimant.complete(record.id)
        assert sorted(taken) == sorted(submitted)  # no double-claims

    def test_claim_batch_spans_shards(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=4, rng=0)
        for i in range(20):
            queue.submit("noop", {"i": i})
        batch = queue.claim_batch(12)
        assert len(batch) == 12
        assert len({shard_for(r.id, 4) for r in batch}) > 1

    def test_shard_visit_order_is_randomized(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=16, rng=123)
        orders = set()
        for _ in range(6):
            order = list(range(queue.shard_count))
            queue._rng.shuffle(order)
            orders.add(tuple(order))
        assert len(orders) > 1

    def test_stale_lease_takeover_crosses_instances(self, tmp_path):
        a = ShardedJobQueue(tmp_path / "q", shards=2, lease_ttl=0.05, owner="a")
        record = a.submit("noop", {"i": 0}, max_attempts=5)
        assert a.claim().id == record.id
        time.sleep(0.08)
        b = ShardedJobQueue(tmp_path / "q", lease_ttl=0.05, owner="b")
        retaken = b.claim()
        assert retaken is not None and retaken.id == record.id
        assert retaken.attempts == 1
        assert b.stats()["takeovers"] == 1


class TestFanOut:
    def test_counts_jobs_and_revive_aggregate(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=4)
        ids = [queue.submit("noop", {"i": i}, max_attempts=1).id for i in range(10)]
        assert queue.counts()["queued"] == 10
        assert [r.id for r in queue.jobs()] == sorted(ids)
        # Park two jobs as failed, then revive fleet-wide.
        for job_id in ids[:2]:
            assert queue.shard_of(job_id).claim_batch(10)  # some claim
        # fail the two specific ids (claim order is randomized, so just
        # fail whatever is running)
        running = [r.id for r in queue.jobs() if r.status == RUNNING]
        for job_id in running:
            queue.fail(job_id, "boom")
        failed = queue.counts()["failed"]
        assert failed == len(running) > 0
        assert queue.revive() == failed
        assert queue.counts()["failed"] == 0
        assert queue.counts()["queued"] == 10

    def test_gc_fans_and_prunes_terminal_records(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=3)
        ids = [queue.submit("noop", {"i": i}).id for i in range(6)]
        for job_id in ids[:4]:
            queue.complete(job_id, result_key="k")
        report = queue.gc(keep_terminal=0.0)
        assert report["jobs_pruned"] == 4
        assert queue.counts() == {"queued": 2, "running": 0, "done": 0, "failed": 0}
        # Without a retention window nothing is pruned.
        for job_id in ids[4:]:
            queue.complete(job_id, result_key="k")
        assert queue.gc()["jobs_pruned"] == 0
        assert queue.counts()["done"] == 2

    def test_stats_aggregate_with_per_shard_breakdown(self, tmp_path):
        queue = ShardedJobQueue(tmp_path / "q", shards=2)
        for i in range(6):
            queue.submit("noop", {"i": i})
        queue.claim_batch(6)
        stats = queue.stats()
        assert stats["claims"] == 6
        assert stats["shards"] == 2
        assert sum(row["claims"] for row in stats["per_shard"]) == 6
        rows = queue.shard_stats()
        assert [row["shard"] for row in rows] == [0, 1]
        assert sum(row["running"] for row in rows) == 6
