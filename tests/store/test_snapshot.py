"""Unit tests for the snapshot codec: round-trips, guards, checkpoints."""

import base64
import json
import os

import pytest

from repro.algorithms.gossip import GossipAlgorithm
from repro.core.engine import ENGINE_VERSION
from repro.core.engine.trace import Tracer
from repro.core.execution import Execution
from repro.graphs.builders import bidirectional_ring, random_strongly_connected
from repro.store.snapshot import (
    SNAPSHOT_CODEC_VERSION,
    Checkpointer,
    Snapshot,
    SnapshotIntegrityError,
    SnapshotVersionError,
    copy_states,
    decode_states,
    encode_states,
    read_snapshot,
    restore_execution,
    resume_execution,
    snapshot_execution,
    write_snapshot,
)


def make_execution(n=5, seed=1, scramble=0, rounds=0):
    g = random_strongly_connected(n, seed=seed)
    e = Execution(GossipAlgorithm(max), g, inputs=list(range(n)), scramble_seed=scramble)
    if rounds:
        e.run(rounds)
    return g, e


class TestStateCodec:
    def test_round_trip(self):
        states = [{"a": {1, 2}}, (3, frozenset([4])), None, 7.5]
        assert decode_states(encode_states(states)) == states

    def test_copy_is_deep(self):
        states = [{"inner": [1, 2]}]
        copied = copy_states(states)
        copied[0]["inner"].append(3)
        assert states[0]["inner"] == [1, 2]

    def test_non_list_blob_rejected(self):
        import pickle

        with pytest.raises(SnapshotIntegrityError):
            decode_states(pickle.dumps({"not": "a list"}))


class TestEnvelope:
    def test_bytes_round_trip(self):
        _, e = make_execution(rounds=3)
        snap = snapshot_execution(e)
        back = Snapshot.from_bytes(snap.to_bytes())
        assert back.states() == snap.states()
        assert back.round_number == snap.round_number
        assert back.rng_state == snap.rng_state
        assert back.algorithm == snap.algorithm

    def test_bytes_are_deterministic(self):
        _, e = make_execution(rounds=3)
        assert snapshot_execution(e).to_bytes() == snapshot_execution(e).to_bytes()

    def test_codec_version_guard(self):
        _, e = make_execution(rounds=1)
        d = snapshot_execution(e).to_dict()
        d["codec_version"] = "0"
        with pytest.raises(SnapshotVersionError, match="codec version"):
            Snapshot.from_dict(d)

    def test_engine_version_guard(self):
        _, e = make_execution(rounds=1)
        d = snapshot_execution(e).to_dict()
        d["engine_version"] = "not-" + ENGINE_VERSION
        with pytest.raises(SnapshotVersionError, match="engine version"):
            Snapshot.from_dict(d)

    def test_restore_refuses_cross_generation_snapshot(self):
        _, e = make_execution(rounds=1)
        snap = snapshot_execution(e)
        stale = Snapshot(
            algorithm=snap.algorithm,
            n=snap.n,
            round_number=snap.round_number,
            states_blob=snap.states_blob,
            states_digest=snap.states_digest,
            rng_state=snap.rng_state,
            engine_version="ancient",
        )
        with pytest.raises(SnapshotVersionError):
            restore_execution(e, stale)

    def test_corrupt_blob_sha_detected(self):
        _, e = make_execution(rounds=1)
        d = snapshot_execution(e).to_dict()
        d["blob_sha256"] = "0" * 64
        with pytest.raises(SnapshotIntegrityError, match="sha256"):
            Snapshot.from_dict(d)

    def test_corrupt_blob_bytes_detected(self):
        _, e = make_execution(rounds=1)
        d = snapshot_execution(e).to_dict()
        blob = bytearray(base64.b64decode(d["states_b64"]))
        blob[len(blob) // 2] ^= 0xFF
        d["states_b64"] = base64.b64encode(bytes(blob)).decode("ascii")
        with pytest.raises(SnapshotIntegrityError):
            Snapshot.from_dict(d)

    def test_state_digest_mismatch_detected(self):
        _, e = make_execution(rounds=1)
        snap = snapshot_execution(e)
        snap.states_digest ^= 1
        with pytest.raises(SnapshotIntegrityError, match="digest"):
            snap.states()

    def test_garbage_bytes_rejected(self):
        with pytest.raises(SnapshotIntegrityError):
            Snapshot.from_bytes(b"\x00\x01 not json")
        with pytest.raises(SnapshotIntegrityError):
            Snapshot.from_bytes(b"[1, 2, 3]")


class TestRestore:
    def test_restore_continues_identically(self):
        g, e1 = make_execution(rounds=4)
        snap = snapshot_execution(e1)
        e1.run(5)
        e2 = resume_execution(snap, GossipAlgorithm(max), g)
        e2.run(5)
        assert e2.states == e1.states
        assert e2.round_number == e1.round_number

    def test_execution_facade_methods(self):
        g, e1 = make_execution(rounds=2)
        snap = e1.snapshot()
        e1.run(3)
        _, e2 = make_execution(rounds=0)
        e2.restore(snap).run(3)
        assert e2.states == e1.states

    def test_wrong_algorithm_rejected(self):
        from repro.algorithms.push_sum import PushSumAlgorithm

        g, e = make_execution(n=4, rounds=1)
        snap = snapshot_execution(e)
        other = Execution(PushSumAlgorithm(), g, inputs=[1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ValueError, match="cannot restore"):
            restore_execution(other, snap)

    def test_wrong_size_rejected(self):
        _, e5 = make_execution(n=5, rounds=1)
        _, e4 = make_execution(n=4, rounds=0)
        with pytest.raises(ValueError, match="agents"):
            restore_execution(e4, snapshot_execution(e5))

    def test_scramble_mismatch_rejected(self):
        g, e = make_execution(rounds=1, scramble=0)
        snap = snapshot_execution(e)
        plain = Execution(
            GossipAlgorithm(max), g, inputs=list(range(5)), scramble_seed=None
        )
        with pytest.raises(ValueError, match="scramble"):
            restore_execution(plain, snap)

    def test_unscrambled_snapshot_resumes(self):
        g = bidirectional_ring(5)
        e1 = Execution(GossipAlgorithm(max), g, inputs=[2, 7, 1, 8, 3], scramble_seed=None)
        e1.run(2)
        snap = snapshot_execution(e1)
        assert snap.rng_state is None
        e1.run(3)
        e2 = resume_execution(snap, GossipAlgorithm(max), g)
        e2.run(3)
        assert e2.states == e1.states

    def test_tracer_counters_survive_resume(self):
        g, e1 = make_execution(rounds=0)
        tracer1 = Tracer()
        e1.attach(tracer1)
        e1.run(4)
        snap = snapshot_execution(e1)
        e1.run(6)

        e2 = resume_execution(snap, GossipAlgorithm(max), g)
        tracer2 = Tracer()
        e2.attach(tracer2)
        restore_execution(e2, snap)  # restores the registry into tracer2
        e2.run(6)
        assert (
            tracer2.registry.counter("rounds").value
            == tracer1.registry.counter("rounds").value
            == 10
        )
        assert (
            tracer2.registry.counter("messages_delivered").value
            == tracer1.registry.counter("messages_delivered").value
        )


class TestSnapshotFiles:
    def test_write_read_round_trip(self, tmp_path):
        _, e = make_execution(rounds=3)
        snap = snapshot_execution(e)
        path = tmp_path / "ckpt.json"
        write_snapshot(path, snap)
        back = read_snapshot(path)
        assert back.states() == snap.states()
        # Atomic writes leave no temp residue behind.
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]

    def test_corrupt_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b"{torn write")
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot(path)

    def test_checkpointer_periodic_saves(self, tmp_path):
        g, e = make_execution(rounds=0)
        path = tmp_path / "ckpt.json"
        ckpt = e.checkpoint_to(path, every=3)
        e.run(7)
        assert ckpt.saved_rounds == [3, 6]
        assert read_snapshot(path).round_number == 6
        forced = ckpt.save()
        assert forced.round_number == 7
        assert read_snapshot(path).round_number == 7

    def test_checkpointer_rejects_bad_interval(self, tmp_path):
        _, e = make_execution()
        with pytest.raises(ValueError):
            Checkpointer(e, tmp_path / "x.json", every=0)

    def test_checkpoint_file_always_restorable(self, tmp_path):
        """The newest finished write is what's on disk; resuming from it
        matches the original trajectory from that round on."""
        g, e1 = make_execution(rounds=0)
        path = tmp_path / "ckpt.json"
        e1.checkpoint_to(path, every=2)
        e1.run(9)
        snap = read_snapshot(path)
        assert snap.round_number == 8
        e2 = resume_execution(snap, GossipAlgorithm(max), g)
        e2.run(1)
        assert e2.states == e1.states
        assert e2.round_number == 9


class TestVersionConstants:
    def test_current_versions_accepted(self):
        _, e = make_execution(rounds=1)
        snap = snapshot_execution(e)
        assert snap.codec_version == SNAPSHOT_CODEC_VERSION
        assert snap.engine_version == ENGINE_VERSION
        Snapshot.from_dict(snap.to_dict())  # must not raise
