"""The checkpoint/resume equivalence property.

For every communication model, on static and dynamic networks, with and
without delivery scrambling: running straight to round ``T`` is
bit-identical — states, canonical forms, trace digests — to running to
round ``k``, snapshotting, serializing the snapshot to bytes, restoring
it into a *fresh* execution, and running on to ``T``.  The recording
algorithms are order-sensitive on purpose (any drift in delivery order or
scramble-stream position changes their states), and the whole suite also
runs under ``REPRO_PARALLEL=1`` in CI, which routes batch executions —
and therefore the codec's worker-side state capture — through the
process-parallel backend.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import Execution
from repro.core.metrics import canonical_repr
from repro.dynamics.dynamic_graph import PeriodicDynamicGraph
from repro.graphs.builders import (
    random_strongly_connected,
    random_symmetric_connected,
)
from repro.store.snapshot import Snapshot, snapshot_execution, resume_execution

from tests.property.test_engine_equivalence import (
    RecordBroadcast,
    RecordOutdegree,
    RecordPorts,
    RecordSymmetric,
)

params = st.tuples(
    st.integers(min_value=2, max_value=6),            # n
    st.integers(min_value=0, max_value=10_000),       # graph seed
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),  # scramble
    st.integers(min_value=1, max_value=5),            # checkpoint round k
    st.integers(min_value=1, max_value=4),            # extra rounds past k
)


def assert_resume_invisible(algorithm_factory, network, inputs, scramble, k, extra):
    """run(k+extra) == run(k); snapshot; restore elsewhere; run(extra)."""
    straight = Execution(
        algorithm_factory(), network, inputs=inputs, scramble_seed=scramble
    )
    straight.run(k)
    # Serialize through the full envelope — what a checkpoint file holds.
    snap = Snapshot.from_bytes(snapshot_execution(straight).to_bytes())
    straight.run(extra)

    resumed = resume_execution(snap, algorithm_factory(), network)
    assert resumed.round_number == k
    resumed.run(extra)

    assert resumed.round_number == straight.round_number
    assert resumed.states == straight.states, "resume perturbed the trajectory"
    assert [canonical_repr(s) for s in resumed.states] == [
        canonical_repr(s) for s in straight.states
    ]


class TestStaticResume:
    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_broadcast(self, p):
        n, seed, scramble, k, extra = p
        g = random_strongly_connected(n, seed=seed)
        assert_resume_invisible(RecordBroadcast, g, list(range(n)), scramble, k, extra)

    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_symmetric(self, p):
        n, seed, scramble, k, extra = p
        g = random_symmetric_connected(n, seed=seed)
        assert_resume_invisible(RecordSymmetric, g, list(range(n)), scramble, k, extra)

    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_outdegree(self, p):
        n, seed, scramble, k, extra = p
        g = random_strongly_connected(n, seed=seed)
        assert_resume_invisible(RecordOutdegree, g, list(range(n)), scramble, k, extra)

    @settings(max_examples=15, deadline=None)
    @given(params)
    def test_output_ports(self, p):
        n, seed, scramble, k, extra = p
        g = random_strongly_connected(n, seed=seed)
        assert_resume_invisible(RecordPorts, g, list(range(n)), scramble, k, extra)


class TestDynamicResume:
    """Dynamic networks: the resumed execution re-queries ``graph_at(t)``
    for rounds past the checkpoint, so equality also pins that the round
    counter restored to exactly the right position in the schedule."""

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_broadcast_on_periodic_graphs(self, p):
        n, seed, scramble, k, extra = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + j) for j in range(3)]
        )
        assert_resume_invisible(RecordBroadcast, dyn, list(range(n)), scramble, k, extra)

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_symmetric_on_periodic_graphs(self, p):
        n, seed, scramble, k, extra = p
        dyn = PeriodicDynamicGraph(
            [random_symmetric_connected(n, seed=seed + j) for j in range(2)]
        )
        assert_resume_invisible(RecordSymmetric, dyn, list(range(n)), scramble, k, extra)

    @settings(max_examples=12, deadline=None)
    @given(params)
    def test_outdegree_on_periodic_graphs(self, p):
        n, seed, scramble, k, extra = p
        dyn = PeriodicDynamicGraph(
            [random_strongly_connected(n, seed=seed + j) for j in range(3)]
        )
        assert_resume_invisible(RecordOutdegree, dyn, list(range(n)), scramble, k, extra)


class TestTraceEquivalence:
    """The resumed half of a traced run records the same deterministic
    round stream (messages, bytes, residuals, state digests) as the
    uninterrupted run's tail."""

    @settings(max_examples=10, deadline=None)
    @given(params)
    def test_trace_tail_identical(self, p):
        from repro.core.engine.trace import Tracer

        n, seed, scramble, k, extra = p
        g = random_strongly_connected(n, seed=seed)
        inputs = list(range(n))

        straight = Execution(RecordBroadcast(), g, inputs=inputs, scramble_seed=scramble)
        tail_tracer = Tracer()
        straight.run(k)
        snap = snapshot_execution(straight)
        straight.attach(tail_tracer)
        straight.run(extra)

        resumed = resume_execution(snap, RecordBroadcast(), g)
        resumed_tracer = Tracer()
        resumed.attach(resumed_tracer)
        resumed.run(extra)

        assert (
            resumed_tracer.deterministic_rounds()
            == tail_tracer.deterministic_rounds()
        )


class TestParallelBackendCodec:
    """The parallel backend's worker-side state capture goes through the
    same audited codec; final states must come back bit-identical to the
    sequential runner's."""

    def test_worker_states_match_sequential(self):
        from repro.core.engine import BatchJob, run_batch

        def jobs():
            return [
                BatchJob(
                    RecordBroadcast(),
                    random_strongly_connected(4, seed=s),
                    inputs=[10 + s, 20, 30, 40],
                    rounds=3,
                )
                for s in range(4)
            ]

        sequential = run_batch(jobs(), parallel=False)
        fanned = run_batch(jobs(), parallel=True, workers=2)
        for seq, par in zip(sequential, fanned):
            assert par.execution.states == seq.execution.states
            assert par.outputs == seq.outputs
